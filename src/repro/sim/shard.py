"""Sharded fleet engine: the population partitioned across worker processes.

Section V's distributed-implementation argument is an architecture statement:
each device decides locally from broadcast backlogs and a server-supplied lag
estimate, so the *only* state that couples users is what flows through the
parameter server — the global model/version, the in-flight set, the
``Q(t)``/``H(t)`` backlogs, and the gap sum ``G(t)``.  This module exploits
that boundary literally:

* the **coordinator** owns exactly the coupling state
  (:class:`~repro.sim.coupling.CouplingCore`: server, policy queues, gaps,
  sync buffer, transport accounting, traces, evaluation);
* each **shard** owns a contiguous slice of the population's per-user state
  (:class:`FleetShard`: the struct-of-arrays
  :class:`~repro.sim.fleet.FleetState`, batteries, application churn, FL
  clients and their actual NumPy training), running either in-process
  (:class:`InlineShardHandle` — the single-process engine) or in its own
  worker process (:class:`ProcessShardHandle` — :class:`ShardedEngine`).

Per slot, coordinator and shards exchange only the paper's coupling state:
downloads (version + parameters), ready-pool observations, decisions,
finished uploads, and backlog-derived scalars.  Between events, every shard
fast-forwards its quiet region in lock-step to the global event horizon
(two-phase try/commit, so a battery flip in one shard never lets another
shard overshoot).

**Determinism contract.**  For any shard count, a sharded run is *bitwise
identical* to the single-process fleet fast-forward run: shards are
contiguous (so per-shard iteration in shard order is ascending-user
iteration), uploads apply in deterministic ascending user order, decisions
are made on the concatenated global observation batch (the policy sees the
exact slot-wise inputs of the single-process engine, including same-slot lag
coupling across shard boundaries), reductions that are float folds (energy
totals, the gap sum) are computed coordinator-side over per-user values in
global user order, and per-user RNG streams (client shuffling, arrivals) are
partition-independent.  ``tests/test_shard.py`` and the ``shard-smoke`` CI
gate hold the engine to this contract.
"""

from __future__ import annotations

import bisect
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.offline import OfflinePolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import (
    Aggregation,
    ObservationBatch,
    SchedulingPolicy,
    SlotContext,
)
from repro.core.staleness import gradient_gap
from repro.comm.network import NetworkModel
from repro.comm.transport import ModelTransport
from repro.energy.measurements import MeasurementTable
from repro.energy.power_model import PowerModel
from repro.faults.retry import RetryPolicy, poll_intervals
from repro.fl.batch import TrainAheadScheduler
from repro.fl.client import FLClient, LocalUpdate
from repro.fl.metrics import AccuracyTracker
from repro.fl.model import build_mlp
from repro.fl.server import AsyncUpdateRule, ParameterServer
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.config import SimulationConfig
from repro.sim.coupling import CouplingCore
from repro.sim.engine import (
    SimulationResult,
    _policy_queue_stats,
    _apply_queue_telemetry,
    build_arrival_schedule,
    build_batteries,
    build_clients,
    build_dataset,
    build_eval_model,
    build_partitions,
    build_rngs,
    build_transport,
    fleet_has_batteries,
)
from repro.sim.fleet import FleetEnergyAccountant, FleetState, ReadyPayload
from repro.sim.rng import spawn_generators
from repro.sim.shmplane import (
    REPLY,
    REQUEST,
    ShardMailbox,
    decode_frame,
    encode_frame,
)
from repro.sim.timers import EngineTimers
from repro.sim.trace import TRACE_LEVELS, SimulationTrace, SlotSample

if TYPE_CHECKING:
    from repro.device.models import DeviceSpec
    from repro.energy.battery import Battery
    from repro.faults.plan import FaultInjector
    from repro.service.checkpoint import Checkpointer, EngineCheckpoint

__all__ = [
    "FleetShard",
    "InlineShardHandle",
    "ProcessShardHandle",
    "ShardDied",
    "ShardFailure",
    "ShardTimeout",
    "ShardedEngine",
    "build_observation_batch",
    "drive_fleet_loop",
    "shard_bounds",
]


class ShardFailure(RuntimeError):
    """A shard worker failed in a way supervision can repair.

    Raised by :class:`ProcessShardHandle` when the worker *process* is
    gone or unresponsive — as opposed to a worker that replied with a
    Python traceback, which is a deterministic bug and is deliberately
    *not* retried (re-running deterministic code re-raises the same
    error; see :meth:`ProcessShardHandle.wait`).
    """

    def __init__(self, shard_index: int, message: str) -> None:
        super().__init__(message)
        self.shard_index = shard_index


class ShardDied(ShardFailure):
    """The worker process exited (crash, SIGKILL, OOM-kill) mid-protocol."""


class ShardTimeout(ShardFailure):
    """The worker process is alive but did not reply within the IPC timeout."""


def shard_bounds(num_users: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` user ranges for ``shards`` partitions.

    Users are split as evenly as possible: the first ``num_users % shards``
    shards carry one extra user, the last shard is the ragged (smallest)
    one.  More shards than users clamp to one user per shard.  Contiguity is
    load-bearing for the determinism contract — iterating shards in order is
    iterating users in ascending order.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    if shards <= 0:
        raise ValueError("shards must be positive")
    shards = min(shards, num_users)
    base, remainder = divmod(num_users, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        size = base + (1 if index < remainder else 0)
        bounds.append((lo, lo + size))
        lo += size
    return bounds


# ---------------------------------------------------------------------------
# Protocol payloads (everything crossing a shard boundary must pickle)
# ---------------------------------------------------------------------------


@dataclass
class SlotOpenReply:
    """Shard reply to ``open_slot``: its ready pool and training count."""

    payload: ReadyPayload
    num_training: int


@dataclass
class SlotExecReply:
    """Shard reply to ``run_slot``.

    Attributes:
        finished: ``(user, update, round_number)`` per training completion,
            ascending user order (global ids).
        tick_total: shard-local cumulative energy fold at a trace tick
            (``None`` off-grid); bitwise-equal to ``accountant.total_j()``.
        tick_user_totals: per-user cumulative totals at the tick, shipped
            only under multi-shard full tracing so the coordinator can fold
            the global total in user order.
        next_ready: size of the shard's ready pool entering the next slot.
        spec_open: piggybacked ``open_slot(slot + 1)`` reply, produced when
            the coordinator allowed speculation and the shard has ready
            users (so the global fast-forward gate cannot fire).  Saves one
            round trip per shard per slot; the coordinator posts an
            explicit ``open_slot`` only when new arrivals land on the
            shard (the worker then merges them idempotently).
    """

    finished: List[Tuple[int, LocalUpdate, int]]
    tick_total: Optional[float]
    tick_user_totals: Optional[np.ndarray]
    next_ready: int
    spec_open: Optional[SlotOpenReply] = None


@dataclass
class QuietTryReply:
    """Shard reply to ``quiet_try``: how far it could advance, uncommitted."""

    advanced: int
    num_training: int


@dataclass
class QuietCommitReply:
    """Shard reply to ``quiet_commit``: tick data of the committed region."""

    tick_offsets: List[int]
    tick_totals: List[float]
    tick_user_totals: Optional[List[np.ndarray]]
    next_ready: int


@dataclass
class ShardFinal:
    """Everything a shard reports once the horizon is exhausted."""

    accountant: FleetEnergyAccountant
    final_battery_soc: List[float]
    training_seconds: float


def build_observation_batch(
    slot: int,
    slot_seconds: float,
    payloads: Sequence[ReadyPayload],
    server: ParameterServer,
    gaps: np.ndarray,
) -> ObservationBatch:
    """Assemble the global per-slot observation batch from shard payloads.

    Payloads arrive in shard order with globally-ascending user ids, so
    concatenation reproduces exactly the batch the single-process engine
    builds from its full-population arrays; the two coupling columns —
    server lag estimates and Eq. (12) gaps — are filled from coordinator
    state here, which is what makes the batch identical across shard
    layouts (the lag estimate consults the *global* in-flight set).
    """
    def column(name: str) -> np.ndarray:
        if len(payloads) == 1:  # zero-copy for the single-shard loop
            return getattr(payloads[0], name)
        return np.concatenate([getattr(p, name) for p in payloads])

    users = column("users")
    duration_slots = column("duration_slots")
    now_s = slot * slot_seconds
    durations_s = duration_slots * slot_seconds
    lags = server.estimate_lags(users, now_s, durations_s)
    return ObservationBatch(
        slot=slot,
        slot_seconds=slot_seconds,
        user_ids=users,
        app_running=column("app_running"),
        power_corun_w=column("power_corun_w"),
        power_app_w=column("power_app_w"),
        power_training_w=column("power_training_w"),
        power_idle_w=column("power_idle_w"),
        estimated_lag=lags,
        momentum_norm=column("momentum_norm"),
        learning_rate=column("learning_rate"),
        momentum_coeff=column("momentum_coeff"),
        training_duration_slots=duration_slots,
        waiting_slots=column("waiting_slots"),
        current_gap=gaps[users],
        device_names=column("device_names"),
        app_names=column("app_names"),
    )


# ---------------------------------------------------------------------------
# Shard-side execution unit
# ---------------------------------------------------------------------------


class FleetShard:
    """One contiguous population slice plus its execution kernels.

    Wraps a slice-local :class:`~repro.sim.fleet.FleetState`, the slice's FL
    clients and a :class:`~repro.fl.batch.TrainAheadScheduler`, and exposes
    the slot-stage methods the coordinator drives — the same methods whether
    the shard runs in-process (single-process engine) or inside a worker
    process (sharded engine).  All protocol arguments and replies use
    *global* user ids; internally everything is slice-local (``- lo``).

    Args:
        config: the (full-population) run configuration.
        lo / hi: the global user range ``[lo, hi)`` this shard owns.
        device_specs / batteries / clients: the slice's components, already
            sliced to ``hi - lo`` entries.
        arrivals: the slice's arrival schedule, re-indexed to local ids
            (:meth:`~repro.sim.arrivals.ArrivalSchedule.slice_users`).
        include_params: ship absolute parameter vectors in uploads (non-
            accumulate merge rules).
        batched_training / training_threads: train-ahead configuration.
        timers: profiling sink; the single-process engine passes its own so
            training time lands in the same report.
    """

    def __init__(
        self,
        config: SimulationConfig,
        lo: int,
        hi: int,
        device_specs: Sequence["DeviceSpec"],
        power_model: PowerModel,
        batteries: Sequence[Optional["Battery"]],
        clients: Sequence[FLClient],
        arrivals: ArrivalSchedule,
        include_params: bool,
        batched_training: bool,
        training_threads: Optional[int],
        timers: Optional[EngineTimers] = None,
    ) -> None:
        if hi - lo != len(device_specs):
            raise ValueError("device_specs must cover exactly [lo, hi)")
        self.config = config  # reprolint: static
        self.lo = lo
        self.hi = hi
        self.clients = list(clients)
        self.fleet = FleetState(
            config=config,
            device_specs=device_specs,
            power_model=power_model,
            batteries=batteries,
            clients=self.clients,
            arrivals=arrivals,
        )
        self.trainer = TrainAheadScheduler(
            self.clients,
            batched=batched_training,
            threads=training_threads,
            include_params=include_params,
        )
        # Profiling only; training seconds are reported, never checkpointed.
        self.timers = timers if timers is not None else EngineTimers(enabled=True)  # reprolint: static
        # Uncommitted quiet-region try state; checkpoints happen only at slot
        # boundaries, where every try has been committed or rolled back.
        self._quiet_stash: Optional[tuple] = None  # reprolint: static
        # Highest slot whose application churn already ran — makes
        # ``open_slot`` idempotent so the speculative open piggybacked on
        # ``run_slot`` composes with a later arrival-merging open of the
        # same slot (never checkpointed: snapshots only happen at
        # boundaries where no speculation was allowed).
        self._opened_slot = -1  # reprolint: static

    @classmethod
    def build(
        cls,
        config: SimulationConfig,
        lo: int,
        hi: int,
        arrivals: ArrivalSchedule,
        measurement_table: Optional[MeasurementTable],
        batched_training: bool,
        training_threads: Optional[int],
    ) -> "FleetShard":
        """Reconstruct the shard's slice of the system inside a worker.

        Uses the engine's own component builders with the same RNG streams,
        so the slice is bitwise-identical to the corresponding rows of a
        full single-process build; only the arrival schedule is shipped in
        (already generated by the coordinator, whose ``arrivals`` stream it
        consumed).
        """
        from repro.device.models import build_device_fleet

        rngs = build_rngs(config)
        device_specs = build_device_fleet(
            config.num_users,
            rngs["devices"],
            mix=config.device_mix,
            names=config.device_names,
        )
        table = measurement_table or MeasurementTable()
        power_model = PowerModel(
            table=table,
            include_scheduler_overhead=config.include_scheduler_overhead,
        )
        batteries = build_batteries(config, device_specs)[lo:hi]
        dataset = build_dataset(config)
        partitions = build_partitions(config, dataset, rngs["dataset"])
        clients = build_clients(config, partitions, dataset.input_dim(), lo, hi)
        include_params = config.async_rule is not AsyncUpdateRule.ACCUMULATE
        return cls(
            config=config,
            lo=lo,
            hi=hi,
            device_specs=device_specs[lo:hi],
            power_model=power_model,
            batteries=batteries,
            clients=clients,
            arrivals=arrivals,
            include_params=include_params,
            batched_training=batched_training,
            training_threads=training_threads,
        )

    # -- slot stages (called by the coordinator, global ids) -------------------

    def open_slot(
        self,
        slot: int,
        arriving: Sequence[int],
        version: Optional[int],
        params: Optional[np.ndarray],
    ) -> SlotOpenReply:
        """Step 1+2 of the slot: application churn, arrivals, ready pool.

        Idempotent per slot: when the churn for ``slot`` already ran (the
        speculative open piggybacked on the previous ``run_slot``), only
        the arrivals are merged and the payload rebuilt — the same state
        the one-shot call would have produced, since ``begin_slot_apps``
        precedes ``make_ready`` either way and neither touches the other's
        state.
        """
        fleet = self.fleet
        if self._opened_slot < slot:
            fleet.begin_slot_apps(slot)
            self._opened_slot = slot
        for user in arriving:
            # arriving is non-empty only when the coordinator performed the
            # downloads, so the version/params pair is always present here.
            assert version is not None and params is not None
            fleet.make_ready(user - self.lo, version, params)
        users_local = fleet.ready_users()
        payload = fleet.ready_payload(users_local)
        payload.users = users_local + self.lo
        return SlotOpenReply(
            payload=payload, num_training=int(fleet.training_active.sum())
        )

    def run_slot(
        self,
        slot: int,
        scheduled: Sequence[int],
        idle: Sequence[int],
        want_tick: bool,
        capture_users: bool,
        speculate: bool = False,
    ) -> SlotExecReply:
        """Steps 2b–3: apply decisions, advance the slice, train finishers."""
        fleet = self.fleet
        lo = self.lo
        for user in scheduled:
            local = int(user) - lo
            fleet.start_training(local)
            base = fleet.base_params[local]
            assert base is not None  # pinned at download
            self.trainer.record(local, base, int(fleet.base_version[local]))
        # Per-slot scratch owned by the fleet; advance() only reads it.
        decided_idle = fleet._scratch_decided_idle
        decided_idle.fill(False)
        if len(idle):
            idle_local = np.asarray(idle, dtype=np.int64) - lo
            fleet.waiting_slots[idle_local] += 1
            decided_idle[idle_local] = True
        outcome = fleet.advance(decided_idle)
        finished: List[Tuple[int, LocalUpdate, int]] = []
        for local in outcome.finished_users:
            local = int(local)
            tick = self.timers.start()
            base = fleet.base_params[local]
            assert base is not None  # pinned at download
            update = self.trainer.obtain(local, base, int(fleet.base_version[local]))
            self.timers.stop("training", tick)
            fleet.momentum_norms[local] = update.momentum_norm
            finished.append((local + lo, update, self.clients[local].rounds_completed))
        fleet.accountant.close_slot()
        tick_total = None
        tick_user_totals = None
        if want_tick:
            acc = fleet.accountant
            # Same per-user formula and fold order as accountant.total_j().
            user_totals = (
                acc.idle_j + acc.app_j + acc.training_j + acc.corunning_j
            ) + acc.overhead_j
            tick_total = float(sum(user_totals.tolist()))
            if capture_users:
                tick_user_totals = user_totals
        next_ready = len(fleet.ready_users())
        spec_open = None
        if speculate and next_ready > 0:
            # With ready users here the coordinator's fast-forward gate
            # (``global_ready == 0``) cannot fire, so the next protocol
            # step for this shard is ``open_slot(slot + 1)`` — run it now
            # and save the round trip.  ``begin_slot_apps`` never changes
            # ready eligibility, so ``next_ready`` keeps its pre-open
            # meaning.
            spec_open = self.open_slot(slot + 1, (), None, None)
        return SlotExecReply(
            finished=finished,
            tick_total=tick_total,
            tick_user_totals=tick_user_totals,
            next_ready=next_ready,
            spec_open=spec_open,
        )

    # -- event-horizon fast forward (two-phase) ---------------------------------

    def quiet_try(
        self,
        slot: int,
        want_ticks: bool,
        capture_users: bool,
        two_phase: bool = True,
        limit: Optional[int] = None,
    ) -> QuietTryReply:
        """Phase 1: advance the quiet region up to this shard's own bound.

        With ``two_phase`` (any multi-shard run) the advance happens against
        a snapshot, so the coordinator's agreed global count (the minimum
        across shards) can be committed exactly in :meth:`quiet_commit` —
        shards that advanced further roll back and re-advance; a shard that
        advanced exactly the agreed count keeps its state (truncation never
        changes earlier slots' arithmetic).  A single-shard loop passes
        ``two_phase=False``: its own bound *is* the global minimum, so the
        snapshot copies are skipped on the fast-forward hot path.

        ``limit`` additionally caps the advance (the checkpointer uses it to
        stop a region at the next checkpoint boundary); quiet regions are
        split-exact at any slot boundary, so the cap is bitwise-free.
        """
        fleet = self.fleet
        self._quiet_stash = None
        num_training = int(fleet.training_active.sum())
        if len(fleet.ready_users()):
            return QuietTryReply(advanced=0, num_training=num_training)
        horizon = fleet.quiet_horizon(slot, self.config.total_slots)
        if limit is not None:
            horizon = min(horizon, limit)
        if horizon <= 0:
            return QuietTryReply(advanced=0, num_training=num_training)
        interval = self.config.trace_interval_slots if want_ticks else None
        snapshot = fleet.quiet_snapshot() if two_phase else None
        advanced, offsets, totals, user_totals = fleet.advance_quiet(
            slot, horizon, interval, capture_users
        )
        self._quiet_stash = (
            slot,
            snapshot,
            advanced,
            offsets,
            totals,
            user_totals,
            interval,
            capture_users,
        )
        return QuietTryReply(advanced=advanced, num_training=num_training)

    def quiet_commit(self, count: int) -> QuietCommitReply:
        """Phase 2: settle on the globally-agreed advance count."""
        fleet = self.fleet
        stash = self._quiet_stash
        self._quiet_stash = None
        if stash is None:
            if count != 0:
                raise RuntimeError("quiet_commit without a pending quiet_try")
            return QuietCommitReply([], [], None, len(fleet.ready_users()))
        slot, snapshot, advanced, offsets, totals, user_totals, interval, capture = stash
        if count != advanced:
            if snapshot is None:  # single-phase try can never be cut short
                raise RuntimeError(
                    f"quiet_commit({count}) after a single-phase try of {advanced}"
                )
            fleet.quiet_restore(snapshot)
            offsets, totals = [], []
            user_totals = [] if capture else None
            if count > 0:
                redone, offsets, totals, user_totals = fleet.advance_quiet(
                    slot, count, interval, capture
                )
                if redone != count:  # count <= the shard's own stop bound
                    raise RuntimeError(
                        f"quiet region re-advance made {redone} slots, wanted {count}"
                    )
        return QuietCommitReply(
            tick_offsets=offsets,
            tick_totals=totals,
            tick_user_totals=user_totals,
            next_ready=len(fleet.ready_users()),
        )

    # -- checkpointing -----------------------------------------------------------

    def checkpoint_state(self) -> Dict:
        """The shard's complete mutable state as one plain picklable dict.

        Everything is keyed by *global* user id at this boundary (train-ahead
        flight state included), so slices from different shard layouts are
        interchangeable — :func:`repro.service.checkpoint.reslice` can
        re-partition them for a restore under a different shard count.
        Client state captures exactly what training mutates: the momentum
        velocity (copied — the batched trainer updates rows in place), the
        bit-generator state of the per-client batch-sampling RNG, and the
        round counter.
        """
        lo = self.lo
        trainer_state = self.trainer.state_dict()
        clients_state = []
        for client in self.clients:
            velocity = client.optimizer.velocity
            clients_state.append(
                {
                    "velocity": None if velocity is None else velocity.copy(),
                    "rng_state": client._rng.bit_generator.state,
                    "rounds_completed": client.rounds_completed,
                }
            )
        return {
            "lo": lo,
            "hi": self.hi,
            "fleet": self.fleet.state_dict(),
            "clients": clients_state,
            "pending": {
                local + lo: value for local, value in trainer_state["pending"].items()
            },
            "trained": {
                local + lo: value for local, value in trainer_state["trained"].items()
            },
        }

    def restore_state(self, state: Dict) -> None:
        """Install a checkpoint slice (global-keyed) into this shard."""
        lo = self.lo
        if state["lo"] != lo or state["hi"] != self.hi:
            raise ValueError(
                f"checkpoint slice [{state['lo']}, {state['hi']}) does not match "
                f"shard [{lo}, {self.hi})"
            )
        self.fleet.load_state_dict(state["fleet"])
        # Snapshots are only taken at boundaries whose slot has not been
        # opened (speculation is suppressed there), so the restored shard
        # must run the churn on its first open_slot.
        self._opened_slot = -1
        for client, client_state in zip(self.clients, state["clients"]):
            client.optimizer.load_velocity(client_state["velocity"])
            client._rng.bit_generator.state = client_state["rng_state"]
            client.rounds_completed = int(client_state["rounds_completed"])
        self.trainer.load_state_dict(
            {
                "pending": {
                    user - lo: value for user, value in state["pending"].items()
                },
                "trained": {
                    user - lo: value for user, value in state["trained"].items()
                },
            }
        )

    # -- queries / teardown -------------------------------------------------------

    def stalled_users(self) -> List[int]:
        """Global ids of this shard's permanently-stalled synchronous users."""
        return [user + self.lo for user in self.fleet.stalled_sync_users()]

    def finalize(self) -> ShardFinal:
        """Collect the shard's end-of-run state for the merged result."""
        return ShardFinal(
            accountant=self.fleet.accountant,
            final_battery_soc=self.fleet.final_battery_soc(),
            training_seconds=float(self.timers.seconds.get("training", 0.0)),
        )


# ---------------------------------------------------------------------------
# Shard handles: in-process and worker-process transports
# ---------------------------------------------------------------------------


class InlineShardHandle:
    """Direct in-process shard invocation (the single-process engine)."""

    def __init__(self, shard: FleetShard) -> None:
        self.shard = shard
        self._result: Any = None

    def post(self, method: str, *args: Any) -> None:
        self._result = getattr(self.shard, method)(*args)

    def wait(self) -> Any:
        result, self._result = self._result, None
        return result

    def close(self) -> None:  # pragma: no cover - nothing to tear down
        pass


#: Protocol methods whose first argument is the current slot — the hook
#: points where worker-side fault events check their arming condition.
_SLOT_METHODS = ("open_slot", "run_slot", "quiet_try")

#: Replies the coordinator consumes before the same shard's next exchange,
#: so their array payloads may stay zero-copy views over the mailbox slab.
#: Everything else is copied on receive: ``run_slot`` uploads outlive the
#: slot in ``CouplingCore.sync_buffer``, ``checkpoint_state`` dicts feed
#: snapshots, and ``finalize`` accountants survive segment teardown.
_ZERO_COPY_REPLIES = frozenset({"open_slot", "quiet_try", "quiet_commit"})


def _maybe_inject_worker_fault(
    events: List[Dict], method: str, args: Tuple
) -> bool:
    """Execute any armed fault events for this request (worker-side).

    Returns ``True`` when the request must be swallowed without a reply
    (``drop_message``).  Events are plain dicts shipped in ``init_kwargs``;
    one-shot kinds mark themselves ``fired`` in place.  ``kill_shard`` fires
    on the first slot at or past ``at`` (event-horizon fast-forward can jump
    over the exact slot), exactly how the coordinator-side bookkeeping in
    :meth:`repro.faults.plan.FaultInjector.consume_engine_through` assumes.
    """
    if method not in _SLOT_METHODS or not args:
        return False
    slot = int(args[0])
    for event in events:
        if event.get("fired"):
            continue
        kind = event["kind"]
        at = int(event["at"])
        if kind == "kill_shard" and slot >= at:
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "delay_ipc" and slot >= at:
            event["fired"] = True
            time.sleep(float(event.get("delay_s", 0.0)))
        elif kind == "slow_shard" and at <= slot < at + int(event.get("span", 1)):
            time.sleep(float(event.get("delay_s", 0.0)))
        elif kind == "drop_message" and slot >= at:
            event["fired"] = True
            return True
    return False


def _mailbox_bytes(num_users: int, param_bytes: int) -> Tuple[int, int]:
    """Per-direction mailbox slab sizes for a shard of ``num_users``.

    Requests carry at most one parameter vector per slot (the shared
    download) plus small decision lists; replies carry the ready-pool
    columns (~100 B/user), the per-user tick vector, and upload deltas —
    in the worst slot every user of the shard finishes at once, each with
    a delta and possibly an absolute vector.  Sized for that worst slot but
    capped (a 1M-user shard would otherwise pin gigabytes of ``/dev/shm``);
    anything larger spills to a plain pickled frame, which is a per-slot
    slowdown, never an error.  Tests monkeypatch this to force the spill
    path.
    """
    request = max(1 << 20, 2 * param_bytes + (1 << 16))
    reply = max(1 << 22, num_users * (2 * param_bytes + 224) + (1 << 16))
    return request, min(reply, 1 << 28)


def _shard_worker_main(conn: Any, init_kwargs: Dict) -> None:
    """Worker-process entry point: build the shard lazily, serve commands.

    Transport: every message on the pipe is a byte frame.  With a mailbox
    attached, hot payloads live in the shared-memory slab and the frame is
    a small doorbell (see :mod:`repro.sim.shmplane`); without one — or when
    a payload exceeds the slab — the frame is a plain pickle.  Requests are
    decoded copy-on-receive, so the shard may retain any argument (e.g.
    downloaded parameter vectors) across slots.  The worker only ever
    ``close()``-es its mapping; the coordinator owns the segment name and
    unlinks it on every exit path.
    """
    fault_events: List[Dict] = list(init_kwargs.pop("fault_events", ()))
    mailbox_spec = init_kwargs.pop("mailbox", None)
    mailbox: Optional[ShardMailbox] = None
    shard: Optional[FleetShard] = None
    try:
        if mailbox_spec is not None:
            mailbox = ShardMailbox.attach(mailbox_spec)
        while True:
            try:
                # The worker has nothing to do until the coordinator speaks;
                # the coordinator side must never block unboundedly, but the
                # worker idles here by design and exits on EOF.
                frame = conn.recv_bytes()
            except EOFError:
                break
            method, args = decode_frame(frame, mailbox)
            if method == "__stop__":
                break
            try:
                if shard is None:
                    shard = FleetShard.build(**init_kwargs)
                if fault_events and _maybe_inject_worker_fault(
                    fault_events, method, args
                ):
                    continue  # drop_message: consume the request, never reply
                result = getattr(shard, method)(*args)
                conn.send_bytes(
                    encode_frame(
                        ("ok", result),
                        mailbox,
                        REPLY,
                        copy=method not in _ZERO_COPY_REPLIES,
                    )
                )
            except BaseException:
                conn.send_bytes(
                    encode_frame(("error", traceback.format_exc()), None, REPLY, True)
                )
    finally:
        if mailbox is not None:
            mailbox.close()
        conn.close()


class ProcessShardHandle:
    """One shard living in its own worker process, driven over a pipe.

    ``post`` is asynchronous — the coordinator posts to every shard before
    waiting on any, so shard compute (fleet kernels, local training)
    overlaps across workers.

    All coordinator-side IPC is *bounded*: :meth:`wait` polls the pipe with
    capped exponentially-growing intervals against a deadline, watching the
    worker's liveness the whole time, and raises :class:`ShardDied` /
    :class:`ShardTimeout` instead of blocking forever on a dead or hung
    worker.  A worker that replied with a Python traceback still raises a
    plain ``RuntimeError`` — that is a deterministic bug, not a fault the
    supervisor should respawn through.

    Args:
        context: a ``multiprocessing`` context.
        init_kwargs: :meth:`FleetShard.build` arguments (plus an optional
            ``fault_events`` list the worker executes against itself).
        shard_index: position in the coordinator's handle list (carried on
            failures so the supervisor can report which shard was lost).
        ipc_timeout_s: deadline for any single :meth:`wait`.
        mailbox_bytes: ``(request, reply)`` slab sizes for the shared-memory
            data plane; ``None`` keeps the transport on plain pickled
            frames (used by tests and as an escape hatch).
        timers: coordinator timers charged with ``ipc_send`` (encode +
            doorbell write) and ``ipc_recv`` (blocked on the shard's reply,
            which on a saturated machine includes the remote compute).
    """

    def __init__(
        self,
        context: Any,
        init_kwargs: Dict,
        shard_index: int = 0,
        ipc_timeout_s: float = 600.0,
        mailbox_bytes: Optional[Tuple[int, int]] = None,
        timers: Optional[EngineTimers] = None,
    ) -> None:
        if ipc_timeout_s <= 0:
            raise ValueError("ipc_timeout_s must be positive")
        self.shard_index = shard_index
        self.ipc_timeout_s = ipc_timeout_s
        self.timers = timers
        #: Highest slot this shard was asked to execute; the supervisor
        #: consumes fault events up to here before a recovery replay.
        self.last_slot = -1
        self._mailbox: Optional[ShardMailbox] = None
        try:
            if mailbox_bytes is not None:
                self._mailbox = ShardMailbox.create(*mailbox_bytes)
                init_kwargs = dict(init_kwargs, mailbox=self._mailbox.spec())
            parent_conn, child_conn = context.Pipe()
            self._conn = parent_conn
            self._process = context.Process(
                target=_shard_worker_main, args=(child_conn, init_kwargs), daemon=True
            )
            self._process.start()
            child_conn.close()
        except BaseException:
            # The worker never attached (or never existed): the segment
            # must not outlive this constructor.
            self._destroy_mailbox()
            raise

    def post(self, method: str, *args: Any) -> None:
        if method in _SLOT_METHODS and args:
            self.last_slot = max(self.last_slot, int(args[0]))
        tick = self.timers.start() if self.timers is not None else 0.0
        try:
            # copy=True: the shard retains request arguments (downloaded
            # parameter vectors, restore-state arrays) across slots, so it
            # must never hold views over the request slab.
            self._conn.send_bytes(
                encode_frame((method, args), self._mailbox, REQUEST, copy=True)
            )
        except (BrokenPipeError, OSError) as exc:
            raise ShardDied(
                self.shard_index,
                f"shard {self.shard_index} worker pipe is closed "
                f"(exitcode={self._process.exitcode}): {exc}",
            ) from exc
        if self.timers is not None:
            self.timers.stop("ipc_send", tick)

    def wait(self) -> Any:
        tick = self.timers.start() if self.timers is not None else 0.0
        deadline = time.monotonic() + self.ipc_timeout_s  # reprolint: allow(wall-clock): IPC liveness deadline, never feeds sim state
        for interval in poll_intervals():
            if self._conn.poll(interval):
                break
            if not self._process.is_alive():
                # Drain a reply the worker may have flushed before dying.
                if self._conn.poll(0):
                    break
                raise ShardDied(
                    self.shard_index,
                    f"shard {self.shard_index} worker died "
                    f"(exitcode={self._process.exitcode})",
                )
            if time.monotonic() >= deadline:  # reprolint: allow(wall-clock): IPC liveness deadline, never feeds sim state
                raise ShardTimeout(
                    self.shard_index,
                    f"shard {self.shard_index} worker sent no reply within "
                    f"{self.ipc_timeout_s:.1f}s",
                )
        try:
            # poll() above guaranteed data (or EOF) is ready; this cannot block.
            frame = self._conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise ShardDied(
                self.shard_index,
                f"shard {self.shard_index} worker hung up mid-reply "
                f"(exitcode={self._process.exitcode}): {exc}",
            ) from exc
        status, value = decode_frame(frame, self._mailbox)
        if self.timers is not None:
            self.timers.stop("ipc_recv", tick)
        if status == "error":
            raise RuntimeError(f"shard worker failed:\n{value}")
        return value

    def kill(self) -> None:
        """Hard-stop the worker (supervisor recovery path; no handshake)."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - close on a broken pipe
            pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - defensive teardown
            self._process.kill()
            self._process.join(timeout=5)
        self._destroy_mailbox()

    def close(self) -> None:
        try:
            self._conn.send_bytes(encode_frame(("__stop__", ()), None, REQUEST, True))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - defensive teardown
            self._process.terminate()
            self._process.join(timeout=5)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - close on a broken pipe
            pass
        self._destroy_mailbox()

    def _destroy_mailbox(self) -> None:
        """Close and unlink the shm segment (owner side); idempotent."""
        if self._mailbox is not None:
            self._mailbox.destroy()


# ---------------------------------------------------------------------------
# The shared slot loop
# ---------------------------------------------------------------------------


def _split_users(users: Sequence[int], bounds: Sequence[Tuple[int, int]]) -> List[List[int]]:
    """Partition an ascending global user list along the shard bounds."""
    out: List[List[int]] = [[] for _ in bounds]
    if not users:
        return out
    his = [hi for _, hi in bounds]
    for user in users:
        out[bisect.bisect_right(his, user)].append(user)
    return out


def drive_fleet_loop(
    core: CouplingCore,
    handles: Sequence[Any],
    bounds: Sequence[Tuple[int, int]],
    config: SimulationConfig,
    fast_forward: bool,
    timers: EngineTimers,
    trace_level: str,
    has_batteries: bool,
    start_slot: int = 0,
    pending_arrivals: Optional[List[int]] = None,
    global_ready: int = -1,
    initial_eval: bool = True,
    checkpointer: Optional["Checkpointer"] = None,
    snapshot_fn: Optional[Callable[[int, List[int], int], "EngineCheckpoint"]] = None,
) -> None:
    """Run the fleet slot loop over one or many shards.

    This is the five-step slot timeline of :mod:`repro.sim.engine`, staged
    so that per-user work executes shard-side and coupling-state work
    executes coordinator-side.  With a single inline shard it *is* the
    single-process fleet backend; with process shards it is the sharded
    engine — same code, same operation order, bitwise-identical results.

    Resume: a restored run passes the checkpointed ``start_slot`` /
    ``pending_arrivals`` / ``global_ready`` and ``initial_eval=False`` (the
    slot-0 evaluation already happened in the original run); the loop then
    continues exactly where the checkpoint was taken.  Checkpointing: when a
    :class:`~repro.service.checkpoint.Checkpointer` is supplied together
    with ``snapshot_fn(slot, pending_arrivals, global_ready)``, snapshots
    are taken at the top of due slots — before any of the slot's work — and
    fast-forwarded quiet regions are capped at the next due boundary.
    """
    policy = core.policy
    server = core.server
    trace = core.trace
    sync_mode = policy.aggregation is Aggregation.SYNC
    num_shards = len(handles)
    want_trace = trace_level == "full"
    capture_users = want_trace and num_shards > 1

    stalled_fn: Optional[Callable[[], List[int]]] = None
    if has_batteries:

        def _stalled_users() -> List[int]:
            for handle in handles:
                handle.post("stalled_users")
            stalled: List[int] = []
            for handle in handles:
                stalled.extend(handle.wait())
            return stalled

        stalled_fn = _stalled_users

    if pending_arrivals is None:
        # All users download the initial model and arrive at slot 0.
        pending_arrivals = list(range(config.num_users))
    else:
        pending_arrivals = list(pending_arrivals)
    if initial_eval:
        core.evaluate(0)
    if checkpointer is not None:
        checkpointer.begin(start_slot)

    slot = start_slot
    total_slots = config.total_slots
    may_checkpoint = checkpointer is not None and snapshot_fn is not None
    # Shard upper bounds (exclusive), as searchsorted cut points for
    # splitting ascending decision arrays along shard ownership.
    shard_his = np.asarray([hi for _, hi in bounds[:-1]], dtype=np.int64)
    #: Per-shard speculative ``open_slot`` replies piggybacked on the last
    #: ``run_slot`` round; consumed (or superseded by an arrival-merging
    #: explicit open) at the top of the next slot.
    spec_opens: List[Optional[SlotOpenReply]] = [None] * num_shards
    while slot < total_slots:
        if may_checkpoint and checkpointer.due(slot):
            if any(spec is not None for spec in spec_opens):
                # A stop request raced the speculation window: the shards
                # already opened this slot non-uniformly, so a snapshot
                # here would not be a clean boundary.  Skip it; the due
                # check at the next boundary sees the stop flag before
                # speculation is allowed, so the deferral is one slot at
                # most.
                pass
            else:
                checkpointer.take(
                    snapshot_fn(slot, list(pending_arrivals), global_ready)
                )
        if fast_forward and not pending_arrivals and global_ready == 0:
            limit = None if checkpointer is None else checkpointer.limit(slot)
            advanced, global_ready = _fast_forward_epoch(
                core, handles, config, timers, want_trace, capture_users, slot,
                num_shards, limit,
            )
            if advanced:
                slot += advanced
                continue
        time_s = slot * config.slot_seconds

        # 1+2. Applications and arrivals -> ready pool.  Downloads are
        # coordinator work (server version bookkeeping, transport RNG) and
        # run in ascending global user order; the per-user state lands in
        # the owning shard.
        arriving_by_shard = _split_users(pending_arrivals, bounds)
        num_arrivals = len(pending_arrivals)
        pending_arrivals = []
        posted = [False] * num_shards
        for index, (handle, arriving) in enumerate(zip(handles, arriving_by_shard)):
            if spec_opens[index] is not None and not arriving:
                continue  # the piggybacked open already covers this shard
            version = params = None
            for user in arriving:
                version, params = core.record_download(user, time_s)
            handle.post("open_slot", slot, arriving, version, params)
            posted[index] = True
        open_replies = [
            handle.wait() if posted[index] else spec_opens[index]
            for index, handle in enumerate(handles)
        ]
        spec_opens = [None] * num_shards
        payloads = [reply.payload for reply in open_replies]
        total_ready = sum(len(payload) for payload in payloads)
        num_training = sum(reply.num_training for reply in open_replies)

        context = SlotContext(
            slot=slot,
            slot_seconds=config.slot_seconds,
            num_arrivals=num_arrivals,
            num_ready=total_ready,
            num_training=num_training,
            num_users=config.num_users,
        )
        policy_tick = timers.start()
        policy.begin_slot(context)
        timers.stop("policy", policy_tick)

        # 2b. Batched decisions on the concatenated global ready pool.
        num_scheduled = 0
        scheduled_by_shard: List[List[int]] = [[] for _ in handles]
        idle_by_shard: List[List[int]] = [[] for _ in handles]
        if total_ready:
            merge_tick = timers.start()
            batch = build_observation_batch(
                slot, config.slot_seconds, payloads, server, core.gaps
            )
            timers.stop("merge", merge_tick)
            policy_tick = timers.start()
            schedule = policy.decide_all(batch)
            coupling = batch.coupling()
            for index in np.nonzero(schedule)[0]:
                index = int(index)
                user = int(batch.user_ids[index])
                duration = int(batch.training_duration_slots[index])
                server.register_inflight(
                    user, expected_finish_s=(slot + duration) * config.slot_seconds
                )
                # The Eq. (4) gap at schedule time uses the same
                # sequentially-coupled lag the policy decided with.
                lag = coupling.lag(index)
                coupling.record(index)
                core.gaps[user] = gradient_gap(
                    float(batch.momentum_norm[index]),
                    float(batch.learning_rate[index]),
                    float(batch.momentum_coeff[index]),
                    lag,
                )
                num_scheduled += 1
                trace.record_decision(
                    scheduled=True, corun=bool(batch.app_running[index])
                )
            idle_users = batch.user_ids[~schedule]
            core.gaps[idle_users] += config.epsilon
            trace.decisions["idle"] += len(idle_users)
            # Both selections are ascending (user_ids is), so one
            # searchsorted against the shard upper bounds replaces a
            # per-user bisect — and the slices ship as arrays, which
            # pickle as one buffer instead of hundreds of ints.
            scheduled_users = batch.user_ids[schedule]
            scheduled_by_shard = np.split(
                scheduled_users, np.searchsorted(scheduled_users, shard_his)
            )
            idle_by_shard = np.split(idle_users, np.searchsorted(idle_users, shard_his))
            timers.stop("policy", policy_tick)

        # 3. Advance every shard by one slot; each finisher's upload is
        # obtained shard-side (train-ahead batch or serial round) and
        # applied here in ascending global user order, exactly as before.
        tick_wanted = want_trace and slot % config.trace_interval_slots == 0
        # Shards with ready users may open the next slot inside this same
        # round trip — except across a checkpoint boundary, where the
        # snapshot must capture a uniform not-yet-opened state.
        speculate = slot + 1 < total_slots and not (
            may_checkpoint and checkpointer.due(slot + 1)
        )
        for handle, scheduled, idle in zip(handles, scheduled_by_shard, idle_by_shard):
            handle.post(
                "run_slot", slot, scheduled, idle, tick_wanted, capture_users, speculate
            )
        exec_replies = [handle.wait() for handle in handles]
        spec_opens = [reply.spec_open for reply in exec_replies]
        for reply in exec_replies:  # shard order == ascending user order
            for user, update, round_number in reply.finished:
                if sync_mode:
                    core.buffer_sync_upload(user, update)
                else:
                    core.apply_async_update(user, slot, update, round_number)
                    core.gaps[user] = 0.0
                    pending_arrivals.append(user)

        if sync_mode:
            released = core.maybe_complete_sync_round(slot, stalled_fn)
            if released:
                core.gaps[np.asarray(released, dtype=np.int64)] = 0.0
            pending_arrivals.extend(released)

        # 4+5. Close the slot: queues, traces, evaluation.
        gap_sum = core.total_gap()
        policy_tick = timers.start()
        policy.end_slot(context, num_scheduled, gap_sum)
        timers.stop("policy", policy_tick)

        if tick_wanted:
            queue_length = getattr(getattr(policy, "task_queue", None), "length", 0.0)
            virtual_length = getattr(
                getattr(policy, "virtual_queue", None), "length", 0.0
            )
            if num_shards == 1:
                cumulative_j = exec_replies[0].tick_total
            else:
                merge_tick = timers.start()
                cumulative_j = float(
                    sum(
                        np.concatenate(
                            [reply.tick_user_totals for reply in exec_replies]
                        ).tolist()
                    )
                )
                timers.stop("merge", merge_tick)
            trace.maybe_record_slot(
                SlotSample(
                    slot=slot,
                    time_s=time_s,
                    cumulative_energy_j=cumulative_j,
                    queue_length=queue_length,
                    virtual_queue_length=virtual_length,
                    gap_sum=gap_sum,
                    num_training=context.num_training,
                    num_ready=context.num_ready,
                )
            )
            trace.record_user_gaps(time_s, core.gaps.tolist())
        if slot > 0 and slot % config.eval_interval_slots == 0:
            core.evaluate(slot)
        global_ready = sum(reply.next_ready for reply in exec_replies)
        slot += 1

    core.evaluate(total_slots)


def _fast_forward_epoch(
    core: CouplingCore,
    handles: Sequence[Any],
    config: SimulationConfig,
    timers: EngineTimers,
    want_trace: bool,
    capture_users: bool,
    slot: int,
    num_shards: int,
    limit: Optional[int] = None,
) -> Tuple[int, int]:
    """Advance all shards through the quiet slots starting at ``slot``.

    Returns ``(advanced, global_ready)``.  ``advanced == 0`` means some
    shard has an event due this slot and the caller falls through to the
    normal slot path.  The global advance is the minimum of the per-shard
    bounds (each shard's event horizon, battery flips included), committed
    in lock-step via the shards' two-phase try/commit; the coordinator then
    backfills the policy queues, the traces and the evaluation ticks with
    exactly the values the slot-by-slot path would have produced — the same
    backfill the single-process engine always performed, now over the
    coordinator-resident coupling state.

    During a quiet region no synchronous round can complete either: the
    upload buffer is frozen (no training finishes) and the stalled-user set
    cannot grow, so skipping the per-slot round check is exact.
    """
    two_phase = num_shards > 1
    for handle in handles:
        handle.post("quiet_try", slot, want_trace, capture_users, two_phase, limit)
    tries = [handle.wait() for handle in handles]
    advanced = min(reply.advanced for reply in tries)
    num_training = sum(reply.num_training for reply in tries)
    for handle in handles:
        handle.post("quiet_commit", advanced)
    commits = [handle.wait() for handle in handles]
    global_ready = sum(reply.next_ready for reply in commits)
    if advanced <= 0:
        return 0, global_ready

    policy = core.policy
    gap_sum = core.total_gap()
    tick_offsets = commits[0].tick_offsets

    # Policy bookkeeping for the skipped slots.  The online policy's slot
    # hooks reduce to the exact multi-slot queue recursions; policies that
    # inherit the no-op base hooks need nothing; anything else gets its
    # begin/end hooks invoked per slot with the contexts the slot-by-slot
    # path would have passed (e.g. the offline policy's window planner).
    policy_tick = timers.start()
    tick_queue: Optional[List[Tuple[float, float]]] = None
    if type(policy) is OnlinePolicy:
        queue_length = policy.task_queue.advance_idle(advanced)
        virtual_values = policy.virtual_queue.advance_constant(gap_sum, advanced)
        tick_queue = [
            (queue_length, virtual_values[offset]) for offset in tick_offsets
        ]
    else:
        begin_hook = type(policy).begin_slot is not SchedulingPolicy.begin_slot
        end_hook = type(policy).end_slot is not SchedulingPolicy.end_slot
        if begin_hook or end_hook:
            tick_set = set(tick_offsets)
            tick_queue = []
            for offset in range(advanced):
                context = SlotContext(
                    slot=slot + offset,
                    slot_seconds=config.slot_seconds,
                    num_arrivals=0,
                    num_ready=0,
                    num_training=num_training,
                    num_users=config.num_users,
                )
                if begin_hook:
                    policy.begin_slot(context)
                if end_hook:
                    policy.end_slot(context, 0, gap_sum)
                if offset in tick_set:
                    tick_queue.append(
                        (
                            getattr(
                                getattr(policy, "task_queue", None), "length", 0.0
                            ),
                            getattr(
                                getattr(policy, "virtual_queue", None), "length", 0.0
                            ),
                        )
                    )
    timers.stop("policy", policy_tick)

    # Trace backfill: the sampled slots inside the region carry the constant
    # gap sum and ready/training counts, the replayed queue backlogs and the
    # exact cumulative energy captured by the shard kernels (folded across
    # shards in global user order when partitioned).
    if tick_offsets:
        gap_list = core.gaps.tolist()
        for index, offset in enumerate(tick_offsets):
            sample_slot = slot + offset
            time_s = sample_slot * config.slot_seconds
            if tick_queue is not None:
                queue_length, virtual_length = tick_queue[index]
            else:
                queue_length = getattr(
                    getattr(policy, "task_queue", None), "length", 0.0
                )
                virtual_length = getattr(
                    getattr(policy, "virtual_queue", None), "length", 0.0
                )
            if num_shards == 1:
                cumulative_j = commits[0].tick_totals[index]
            else:
                merge_tick = timers.start()
                cumulative_j = float(
                    sum(
                        np.concatenate(
                            [commit.tick_user_totals[index] for commit in commits]
                        ).tolist()
                    )
                )
                timers.stop("merge", merge_tick)
            core.trace.maybe_record_slot(
                SlotSample(
                    slot=sample_slot,
                    time_s=time_s,
                    cumulative_energy_j=cumulative_j,
                    queue_length=queue_length,
                    virtual_queue_length=virtual_length,
                    gap_sum=gap_sum,
                    num_training=num_training,
                    num_ready=0,
                )
            )
            core.trace.record_user_gaps(time_s, gap_list)

    # Evaluation ticks: the global model is frozen across the region, so the
    # version-keyed cache in CouplingCore.evaluate makes each replay a record.
    interval = config.eval_interval_slots
    first = ((slot + interval - 1) // interval) * interval
    if first == 0:
        first = interval
    for eval_slot in range(first, slot + advanced, interval):
        core.evaluate(eval_slot)
    return advanced, global_ready


# ---------------------------------------------------------------------------
# Supervision: in-memory recovery snapshots multiplexed with user checkpoints
# ---------------------------------------------------------------------------


class _SupervisedCheckpointer:
    """Fan a single checkpointer slot out to the user and the supervisor.

    :func:`drive_fleet_loop` accepts exactly one checkpointer.  Supervision
    needs its own recovery snapshots (in-memory, never persisted) alongside
    whatever the caller asked for, so this adapter multiplexes both through
    that one slot: ``due``/``limit``/``begin`` combine the two schedules,
    and every snapshot that gets taken — for either reason — is remembered
    as the latest recovery point.  User checkpoints therefore double as
    free recovery points, and a dedicated recovery cadence
    (``recovery_every_slots``) is only needed when the caller checkpoints
    rarely or not at all.
    """

    def __init__(
        self,
        user: Optional["Checkpointer"],
        recovery_every_slots: Optional[int],
    ) -> None:
        self.user = user
        self.recovery: Optional["Checkpointer"] = None
        if recovery_every_slots is not None:
            from repro.service.checkpoint import Checkpointer

            self.recovery = Checkpointer(
                lambda checkpoint: None, every_slots=recovery_every_slots
            )
        #: Latest snapshot paired with whether the initial slot-0 evaluation
        #: is already folded into its coordinator state (``False`` for the
        #: eager pre-loop snapshot of a fresh run, which replays with
        #: ``initial_eval=True``).
        self.latest: Optional[Tuple["EngineCheckpoint", bool]] = None

    @property
    def parts(self) -> List["Checkpointer"]:
        return [part for part in (self.recovery, self.user) if part is not None]

    def remember(self, checkpoint: "EngineCheckpoint", eval_done: bool) -> None:
        self.latest = (checkpoint, eval_done)

    def begin(self, slot: int) -> None:
        for part in self.parts:
            part.begin(slot)

    def due(self, slot: int) -> bool:
        return any(part.due(slot) for part in self.parts)

    def limit(self, slot: int) -> Optional[int]:
        limits = [
            limit for part in self.parts if (limit := part.limit(slot)) is not None
        ]
        return min(limits) if limits else None

    def take(self, checkpoint: "EngineCheckpoint") -> None:
        # In-loop snapshots are taken at the top of a slot, after the run's
        # initial evaluation — replaying from one must not re-evaluate.
        self.remember(checkpoint, eval_done=True)
        if self.recovery is not None and self.recovery.due(checkpoint.slot):
            self.recovery.take(checkpoint)
        if self.user is not None and self.user.due(checkpoint.slot):
            # May raise RunInterrupted (stop requested) or any sink error;
            # both unwind the run, which is the user part's contract.
            self.user.take(checkpoint)


# ---------------------------------------------------------------------------
# The sharded engine
# ---------------------------------------------------------------------------


class ShardedEngine:
    """Simulate the federated system with the population sharded across processes.

    Drop-in sibling of :class:`~repro.sim.engine.SimulationEngine` for the
    fleet fast-forward backend: the constructor takes the same configuration
    and policy, ``run()`` returns the same
    :class:`~repro.sim.engine.SimulationResult`, and for any ``shards`` the
    result is bitwise identical to the single-process fleet fast-forward run
    (see the module docstring for the contract and
    ``tests/test_shard.py`` for the enforcement).

    The coordinator process owns the coupling state (parameter server,
    policy queues, gaps, sync quorum, transport accounting, traces,
    evaluation); each worker process rebuilds its contiguous population
    slice from the configuration (same RNG streams as a full build) and runs
    the per-user kernels — including the actual NumPy local training, which
    is where multi-core machines gain real parallelism.

    Args:
        config: run configuration (the full population).
        policy: scheduling policy (coordinator-resident).
        dataset: optional pre-built dataset for the coordinator's
            evaluation; workers always rebuild from the config seed.
        measurement_table: optional Table II/III calibration override
            (shipped to workers; must pickle).
        shards: number of worker processes (clamped to ``num_users``).
        fast_forward: event-horizon fast-forward across shards (default on).
        batched_training: per-shard train-ahead batching
            (:class:`~repro.fl.batch.BatchTrainer`).  Note: batching groups
            are per-shard, so the serial-trainer bitwise contract applies —
            batched runs match to tight numerical tolerance instead.
        profile: collect per-subsystem wall-clock shares; worker training
            time is folded into the ``training`` bucket at the end.
        trace_level: telemetry volume (see
            :class:`~repro.sim.engine.SimulationEngine`); ``summary`` is the
            intended setting for megafleet populations.
        training_threads: per-worker batched-trainer threads (default 1 —
            the shard processes already occupy the cores).
        start_method: ``multiprocessing`` start method; defaults to
            ``"fork"`` where available.
        inline: run the shards in-process through
            :class:`InlineShardHandle` instead of worker processes.  Same
            staged protocol, same results; useful for tests that exercise
            the sharded data path without process startup cost.
        fault_injector: optional :class:`~repro.faults.plan.FaultInjector`
            whose engine events are shipped to the worker processes (chaos
            testing; see ``docs/faults.md``).  Inline shards never inject.
        ipc_timeout_s: per-reply coordinator↔worker deadline; a worker
            silent for longer is declared hung and respawned.
        max_respawns: how many shard failures (worker death, IPC timeout)
            the supervisor repairs before giving up and re-raising; ``0``
            disables supervision entirely.
        recovery_every_slots: cadence of in-memory recovery snapshots; by
            default only user checkpoints and the pre-loop snapshot serve
            as recovery points.
        degrade_on_failure: after a shard failure, redistribute the
            population over one fewer worker instead of respawning the full
            count — graceful degradation for hosts losing capacity.
            Results stay bitwise-identical (the contract is shard-count
            independent).
        shm_plane: ship hot per-slot payloads through preallocated
            shared-memory mailboxes (:mod:`repro.sim.shmplane`), leaving
            the pipe as a doorbell/control channel.  ``False`` falls back
            to fully pickled frames — bitwise-identical results, higher
            coordination overhead.
    """

    def __init__(
        self,
        config: SimulationConfig,
        policy: SchedulingPolicy,
        dataset: Any = None,
        measurement_table: Optional[MeasurementTable] = None,
        shards: int = 2,
        fast_forward: bool = True,
        batched_training: bool = False,
        profile: bool = False,
        trace_level: str = "full",
        training_threads: Optional[int] = 1,
        start_method: Optional[str] = None,
        inline: bool = False,
        fault_injector: Optional["FaultInjector"] = None,
        ipc_timeout_s: float = 600.0,
        max_respawns: int = 3,
        recovery_every_slots: Optional[int] = None,
        degrade_on_failure: bool = False,
        shm_plane: bool = True,
    ) -> None:
        if trace_level not in TRACE_LEVELS:
            raise ValueError(
                f"unknown trace_level {trace_level!r}; choose from {TRACE_LEVELS}"
            )
        if max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        if recovery_every_slots is not None and recovery_every_slots <= 0:
            raise ValueError("recovery_every_slots must be positive when set")
        self.config = config
        self.policy = policy
        self.bounds = shard_bounds(config.num_users, shards)
        self.fast_forward = bool(fast_forward)
        self.batched_training = bool(batched_training)
        self.trace_level = trace_level
        self.training_threads = training_threads
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.inline = bool(inline)
        self.fault_injector = fault_injector
        self.ipc_timeout_s = float(ipc_timeout_s)
        self.max_respawns = int(max_respawns)
        self.recovery_every_slots = recovery_every_slots
        self.degrade_on_failure = bool(degrade_on_failure)
        self.shm_plane = bool(shm_plane)
        self._respawn_backoff = RetryPolicy(
            max_attempts=max(1, self.max_respawns),
            base_delay_s=0.05,
            cap_s=2.0,
        )
        self.timers = EngineTimers(enabled=profile)

        rngs = build_rngs(config)
        from repro.device.models import build_device_fleet

        self.device_specs = build_device_fleet(
            config.num_users,
            rngs["devices"],
            mix=config.device_mix,
            names=config.device_names,
        )
        self.table = measurement_table or MeasurementTable()
        self._has_batteries = fleet_has_batteries(config, self.device_specs)
        self.dataset = build_dataset(config, dataset)
        self.eval_model = build_eval_model(config, self.dataset.input_dim())
        self.server = ParameterServer(
            self.eval_model.get_flat_params(),
            async_rule=config.async_rule,
            mixing_alpha=config.mixing_alpha,
        )
        self.arrivals = build_arrival_schedule(
            config, self.device_specs, rngs["arrivals"], self.table
        )
        self.transport = build_transport(config, rngs["network"])
        self.trace = SimulationTrace(
            trace_interval_slots=config.trace_interval_slots, level=trace_level
        )
        self.accuracy = AccuracyTracker()
        self.core = CouplingCore(
            config=config,
            policy=policy,
            server=self.server,
            transport=self.transport,
            trace=self.trace,
            accuracy=self.accuracy,
            eval_model=self.eval_model,
            dataset=self.dataset,
            timers=self.timers,
        )
        _apply_queue_telemetry(policy, trace_level)
        self._has_run = False
        self._resume: Optional["EngineCheckpoint"] = None

    @classmethod
    def restore(
        cls,
        checkpoint: "EngineCheckpoint",
        *,
        shards: Optional[int] = None,
        dataset: Any = None,
        measurement_table: Optional[MeasurementTable] = None,
        profile: bool = False,
        training_threads: Optional[int] = 1,
        start_method: Optional[str] = None,
        inline: bool = False,
        fault_injector: Optional["FaultInjector"] = None,
        ipc_timeout_s: float = 600.0,
        max_respawns: int = 3,
        recovery_every_slots: Optional[int] = None,
        degrade_on_failure: bool = False,
    ) -> "ShardedEngine":
        """Rebuild a sharded engine from an
        :class:`~repro.service.checkpoint.EngineCheckpoint`.

        ``shards`` defaults to the layout that wrote the checkpoint; any
        other count works too — per-user slice state is re-partitioned
        contiguously (:func:`repro.service.checkpoint.reslice`), and every
        headline metric of the resumed run stays bitwise-identical.
        """
        if checkpoint.backend != "fleet":
            raise ValueError(
                f"cannot restore a {checkpoint.backend!r} checkpoint into the "
                "sharded engine; use SimulationEngine.restore"
            )
        coordinator = checkpoint.coordinator.materialize()
        engine = cls(
            config=checkpoint.config,
            policy=coordinator.policy,
            dataset=dataset,
            measurement_table=measurement_table,
            shards=len(checkpoint.slices or ()) if shards is None else shards,
            fast_forward=checkpoint.fast_forward,
            batched_training=checkpoint.batched_training,
            profile=profile,
            trace_level=checkpoint.trace_level,
            training_threads=training_threads,
            start_method=start_method,
            inline=inline,
            fault_injector=fault_injector,
            ipc_timeout_s=ipc_timeout_s,
            max_respawns=max_respawns,
            recovery_every_slots=recovery_every_slots,
            degrade_on_failure=degrade_on_failure,
        )
        coordinator.install(engine.core, engine.timers)
        engine.server = engine.core.server
        engine.transport = engine.core.transport
        engine.trace = engine.core.trace
        engine.accuracy = engine.core.accuracy
        engine._resume = checkpoint
        return engine

    def _snapshot_builder(
        self, handles: Sequence[Any]
    ) -> Callable[[int, List[int], int], "EngineCheckpoint"]:
        """Closure assembling a full checkpoint from live shard handles."""
        from repro.service.checkpoint import (
            CHECKPOINT_FORMAT_VERSION,
            CoordinatorState,
            EngineCheckpoint,
        )

        def snapshot_fn(
            slot: int, pending_arrivals: List[int], global_ready: int
        ) -> EngineCheckpoint:
            for handle in handles:
                handle.post("checkpoint_state")
            slices = [handle.wait() for handle in handles]
            return EngineCheckpoint(
                format_version=CHECKPOINT_FORMAT_VERSION,
                backend="fleet",
                slot=slot,
                pending_arrivals=pending_arrivals,
                global_ready=global_ready,
                config=self.config,
                fast_forward=self.fast_forward,
                batched_training=self.batched_training,
                trace_level=self.trace_level,
                coordinator=CoordinatorState.capture(self.core, self.timers),
                slices=slices,
            )

        return snapshot_fn

    def _spawn_handles(self, context: Any, nested: bool) -> List[Any]:
        """Start one handle per shard bound (inline or worker process)."""
        handles: List[Any] = []
        for index, (lo, hi) in enumerate(self.bounds):
            init_kwargs = dict(
                config=self.config,
                lo=lo,
                hi=hi,
                arrivals=self.arrivals.slice_users(lo, hi),
                measurement_table=self.table,
                batched_training=self.batched_training,
                training_threads=self.training_threads,
            )
            if nested:
                handles.append(InlineShardHandle(FleetShard.build(**init_kwargs)))
            else:
                if self.fault_injector is not None:
                    events = self.fault_injector.worker_events(index)
                    if events:
                        init_kwargs["fault_events"] = events
                mailbox_bytes = None
                if self.shm_plane:
                    mailbox_bytes = _mailbox_bytes(
                        hi - lo, int(self.server.global_params().nbytes)
                    )
                handles.append(
                    ProcessShardHandle(
                        context,
                        init_kwargs,
                        shard_index=index,
                        ipc_timeout_s=self.ipc_timeout_s,
                        mailbox_bytes=mailbox_bytes,
                        timers=self.timers,
                    )
                )
        return handles

    def _restore_slices(self, handles: Sequence[Any], checkpoint: "EngineCheckpoint") -> None:
        """Load a checkpoint's per-user state into live shard handles."""
        from repro.service.checkpoint import reslice

        for handle, piece in zip(handles, reslice(checkpoint.slices or [], self.bounds)):
            handle.post("restore_state", piece)
        for handle in handles:
            handle.wait()

    def _install_coordinator(self, checkpoint: "EngineCheckpoint") -> None:
        """Roll the coordinator-side coupling state back to a checkpoint."""
        coordinator = checkpoint.coordinator.materialize()
        coordinator.install(self.core, self.timers)
        self.policy = self.core.policy
        self.server = self.core.server
        self.transport = self.core.transport
        self.trace = self.core.trace
        self.accuracy = self.core.accuracy

    def run(self, checkpointer: Optional["Checkpointer"] = None) -> SimulationResult:
        """Run the sharded simulation and return its (merged) result.

        Supervised: when a shard worker dies or stops answering within
        ``ipc_timeout_s``, the supervisor kills the remaining workers, rolls
        the coordinator back to the latest recovery snapshot (the pre-loop
        snapshot, the last user checkpoint, or the last
        ``recovery_every_slots`` point — whichever is newest), respawns the
        workers (over one fewer shard with ``degrade_on_failure``), restores
        their slices via :func:`~repro.service.checkpoint.reslice`, and
        replays forward.  Replay re-executes the same deterministic slot
        timeline, so the recovered result is bitwise-identical to the
        fault-free run.  Worker replies carrying a Python traceback are
        deterministic bugs, not faults — they raise ``RuntimeError`` and
        are never retried.
        """
        if self._has_run:
            raise RuntimeError("this engine has already run; create a new one")
        self._has_run = True
        resume = self._resume
        if resume is None:
            self.policy.reset()
            if isinstance(self.policy, OfflinePolicy):
                self.policy.attach_oracle(self.arrivals)
        total_tick = self.timers.start()
        context = multiprocessing.get_context(self.start_method)
        # Inside an ExperimentSuite pool worker (daemonic), children are
        # forbidden — run the shards inline instead.  Results are identical
        # either way (the handles drive the same FleetShard methods); only
        # the process isolation is lost, which a pool worker already lacks.
        nested = self.inline or multiprocessing.current_process().daemon
        supervising = not nested and self.max_respawns > 0
        supervised = _SupervisedCheckpointer(
            checkpointer, self.recovery_every_slots if supervising else None
        )
        handles: List[Any] = []
        respawns = 0
        try:
            handles = self._spawn_handles(context, nested)
            start_slot = 0
            pending_arrivals: Optional[List[int]] = None
            global_ready = -1
            initial_eval = True
            if resume is not None:
                self._restore_slices(handles, resume)
                start_slot = resume.slot
                pending_arrivals = list(resume.pending_arrivals)
                global_ready = resume.global_ready
                initial_eval = False
                supervised.remember(resume, eval_done=True)
            while True:
                # The snapshot closure binds the live handles — rebuild it
                # whenever the handles are respawned.
                snapshot_fn = self._snapshot_builder(handles)
                if supervising and supervised.latest is None:
                    # Eager pre-loop snapshot: without one, the first
                    # failure of a fresh, never-checkpointed run would be
                    # unrecoverable.  It pre-dates the initial evaluation,
                    # so a replay from it re-runs that evaluation.
                    pending = (
                        list(range(self.config.num_users))
                        if pending_arrivals is None
                        else list(pending_arrivals)
                    )
                    supervised.remember(
                        snapshot_fn(start_slot, pending, global_ready),
                        eval_done=False,
                    )
                use_supervised = supervising or checkpointer is not None
                try:
                    drive_fleet_loop(
                        core=self.core,
                        handles=handles,
                        bounds=self.bounds,
                        config=self.config,
                        fast_forward=self.fast_forward,
                        timers=self.timers,
                        trace_level=self.trace_level,
                        has_batteries=self._has_batteries,
                        start_slot=start_slot,
                        pending_arrivals=pending_arrivals,
                        global_ready=global_ready,
                        initial_eval=initial_eval,
                        checkpointer=supervised if use_supervised else None,
                        snapshot_fn=snapshot_fn if use_supervised else None,
                    )
                    break
                except ShardFailure:
                    respawns += 1
                    latest = supervised.latest
                    if (
                        not supervising
                        or respawns > self.max_respawns
                        or latest is None
                    ):
                        raise
                    # Recovery replays the window since the snapshot; the
                    # fault events inside it already did their damage and
                    # must not re-fire on the respawned workers.
                    high_slot = max(
                        (getattr(handle, "last_slot", -1) for handle in handles),
                        default=-1,
                    )
                    if self.fault_injector is not None:
                        self.fault_injector.consume_engine_through(high_slot)
                    for handle in handles:
                        handle.kill()
                    handles = []
                    time.sleep(self._respawn_backoff.delay_s(respawns))
                    checkpoint, eval_done = latest
                    if self.degrade_on_failure and len(self.bounds) > 1:
                        self.bounds = shard_bounds(
                            self.config.num_users, len(self.bounds) - 1
                        )
                    self._install_coordinator(checkpoint)
                    handles = self._spawn_handles(context, nested)
                    self._restore_slices(handles, checkpoint)
                    start_slot = checkpoint.slot
                    pending_arrivals = list(checkpoint.pending_arrivals)
                    global_ready = checkpoint.global_ready
                    initial_eval = not eval_done
            for handle in handles:
                handle.post("finalize")
            finals = [handle.wait() for handle in handles]
        finally:
            for handle in handles:
                handle.close()
        self.timers.stop_total(total_tick)
        if self.timers.enabled:
            self.timers.seconds["training"] += sum(
                final.training_seconds for final in finals
            )

        merge_tick = self.timers.start()
        accountant = FleetEnergyAccountant.merged([final.accountant for final in finals])
        self.timers.stop("merge", merge_tick)
        queue_history = list(
            getattr(getattr(self.policy, "task_queue", None), "history", lambda: [])()
        )
        virtual_history = list(
            getattr(getattr(self.policy, "virtual_queue", None), "history", lambda: [])()
        )
        return SimulationResult(
            config=self.config,
            policy_name=self.policy.name,
            trace=self.trace,
            accuracy=self.accuracy,
            accountant=accountant,
            num_updates=self.server.num_updates(),
            decision_evaluations=self.policy.decision_cost_evaluations(),
            device_names=[spec.name for spec in self.device_specs],
            queue_history=queue_history,
            virtual_queue_history=virtual_history,
            comm_bytes_mb=self.transport.total_bytes_mb(),
            comm_failures=self.transport.failure_count(),
            final_battery_soc=[
                soc for final in finals for soc in final.final_battery_soc
            ],
            timers=self.timers if self.timers.enabled else None,
            queue_stats=_policy_queue_stats(self.policy),
        )
