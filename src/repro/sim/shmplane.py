"""Shared-memory doorbell data plane for the sharded engine.

The coordinator/shard protocol in :mod:`repro.sim.shard` is a strict
ping-pong per worker: the coordinator posts one request, the worker sends
exactly one reply, and neither side writes again until it has consumed the
other's message.  That discipline lets both directions share one
preallocated ``multiprocessing.shared_memory`` segment per shard — a
*mailbox* — split into a request slab and a reply slab:

``[ request region | reply region ]``

Hot messages are serialized with pickle protocol 5: the small object
skeleton pickles in-band while every NumPy array body of at least
:data:`_INLINE_MAX` bytes becomes an out-of-band
:class:`pickle.PickleBuffer` whose bytes are copied straight into the
sender's slab (smaller bodies stay in-band — see :data:`_INLINE_MAX`).  The ``Pipe`` then carries only a *doorbell
frame* — a few hundred bytes of header, ``(offset, length)`` descriptor
table, and skeleton pickle — instead of megabytes of array payload.  The
receiver rebuilds the arrays either as zero-copy views over the slab or,
when the ``copy`` flag is set, as private copies that stay valid after the
slab is overwritten by the next exchange.

A doorbell frame starts with :data:`_MAGIC`; a plain pickle stream always
starts with ``0x80`` (the ``PROTO`` opcode), so both frame kinds coexist
on the same ``Connection`` and oversized payloads simply fall back to
in-band pickling — the slab is an optimization, never a correctness
constraint.

Lifecycle rules (enforced repo-wide by the ``shm-lifecycle`` reprolint
rule):

* the coordinator *creates* each segment and is the only side that ever
  calls :meth:`ShardMailbox.unlink` — on handle close, on kill, and on
  every supervised-respawn path;
* workers *attach* and only :meth:`ShardMailbox.close`; because every
  ``multiprocessing`` child shares its parent's resource tracker, the
  attach-side registration is a set no-op there and the worker must
  *not* unregister — doing so would strip the coordinator's own
  registration and its later ``unlink`` would double-unregister;
* if the coordinator itself dies before unlinking, its resource tracker
  removes the segment, so a crash leaks nothing in ``/dev/shm``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "REPLY",
    "REQUEST",
    "SEGMENT_PREFIX",
    "ShardMailbox",
    "decode_frame",
    "encode_frame",
]

#: ``/dev/shm`` name prefix for every segment this module creates; the
#: chaos tests glob for it to prove fault paths leak nothing.
SEGMENT_PREFIX = "reproshard"

#: First byte of a doorbell frame.  Anything other than ``0x80`` works
#: (every pickle stream of protocol >= 2 starts with the PROTO opcode),
#: which is what lets doorbell and fallback frames share one Connection.
_MAGIC = 0x7B

_HEADER = struct.Struct("<BBII")  # magic, copy flag, buffer count, skeleton length
_DESCRIPTOR = struct.Struct("<QQ")  # absolute segment offset, byte length
_ALIGN = 64  # start each slab buffer on a cache line

#: Buffers below this stay in-band: the fixed per-buffer cost of slab
#: placement (descriptor, alignment, two memoryview slices) is ~10us,
#: which beats an in-band byte copy only for large arrays.  Small
#: payloads therefore ride the pickle stream exactly as before the shm
#: plane existed, and the slab carries just the megabyte-class bodies
#: (parameter vectors, megafleet payload columns).
_INLINE_MAX = 16384

#: Region selectors for :meth:`ShardMailbox.encode`.
REQUEST = 0
REPLY = 1

#: Deterministic per-process segment naming (no RNG — segment names must
#: not perturb any seeded stream, and the pid keeps concurrent
#: coordinators apart).
_segment_counter = itertools.count()


class ShardMailbox:
    """One shard's preallocated request/reply slabs plus frame codec.

    Created (and later unlinked) by the coordinator, attached by the
    worker from the :meth:`spec` dict carried in its init kwargs.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        request_bytes: int,
        reply_bytes: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._regions: Tuple[Tuple[int, int], ...] = (
            (0, request_bytes),
            (request_bytes, reply_bytes),
        )
        self._closed = False
        self._unlinked = False

    # -- lifecycle ---------------------------------------------------------------------

    @classmethod
    def create(cls, request_bytes: int, reply_bytes: int) -> "ShardMailbox":
        """Allocate a fresh segment (coordinator side)."""
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{next(_segment_counter)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=request_bytes + reply_bytes
        )
        try:
            return cls(shm, request_bytes, reply_bytes, owner=True)
        except BaseException:
            shm.close()
            shm.unlink()
            raise

    @classmethod
    def attach(cls, spec: Dict[str, Any]) -> "ShardMailbox":
        """Map an existing segment from its :meth:`spec` (worker side)."""
        shm = shared_memory.SharedMemory(name=spec["name"])
        try:
            return cls(shm, spec["request_bytes"], spec["reply_bytes"], owner=False)
        except BaseException:
            shm.close()
            raise

    def spec(self) -> Dict[str, Any]:
        """Everything a worker needs to :meth:`attach` (picklable)."""
        return {
            "name": self._shm.name,
            "request_bytes": self._regions[REQUEST][1],
            "reply_bytes": self._regions[REPLY][1],
        }

    def close(self) -> None:
        """Unmap the segment; idempotent, safe on both sides."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # A consumer still holds zero-copy views over the slab.  The
            # mapping is reclaimed at process exit either way, and
            # unlink() below needs only the name — never let a live view
            # turn teardown into a crash.
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only); idempotent."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        """Owner-side teardown: close the mapping and unlink the name."""
        self.close()
        self.unlink()

    # -- frame codec -------------------------------------------------------------------

    def encode(self, obj: Any, region: int, copy: bool) -> bytes:
        """Serialize ``obj`` into one doorbell frame for ``region``.

        Every pickle-5 buffer of at least :data:`_INLINE_MAX` bytes
        (large NumPy array body) is copied into the slab; the returned
        frame holds header, descriptor table, and skeleton pickle
        (small buffers included in-band).  ``copy`` tells the *receiver* whether
        to materialize private copies (safe to retain across exchanges)
        or zero-copy views (valid only until this side's next write).
        Payloads that exceed the slab fall back to plain in-band pickle.
        """
        start, capacity = self._regions[region]
        buffers: List[pickle.PickleBuffer] = []
        views: List[memoryview] = []

        def _select(buffer: pickle.PickleBuffer) -> bool:
            # True -> pickle the buffer in-band; False -> out-of-band.
            view = buffer.raw()
            if view.nbytes < _INLINE_MAX:
                view.release()
                return True
            views.append(view)
            buffers.append(buffer)
            return False

        try:
            try:
                skeleton = pickle.dumps(obj, protocol=5, buffer_callback=_select)
            except BufferError:
                # A non-contiguous exporter slipped through; in-band
                # pickling handles it without the slab.
                return pickle.dumps(obj, protocol=5)
            cursor = 0
            placements: List[Tuple[int, int]] = []
            for view in views:
                aligned = -(-cursor // _ALIGN) * _ALIGN
                placements.append((aligned, view.nbytes))
                cursor = aligned + view.nbytes
            if cursor > capacity:
                return pickle.dumps(obj, protocol=5)
            slab = self._shm.buf
            parts = [_HEADER.pack(_MAGIC, 1 if copy else 0, len(views), len(skeleton))]
            for view, (relative, nbytes) in zip(views, placements):
                absolute = start + relative
                if nbytes:
                    slab[absolute : absolute + nbytes] = view
                parts.append(_DESCRIPTOR.pack(absolute, nbytes))
            parts.append(skeleton)
            return b"".join(parts)
        finally:
            for view in views:
                view.release()
            for buffer in buffers:
                buffer.release()

    def decode(self, frame: bytes) -> Any:
        """Inverse of :meth:`encode`; also accepts plain pickle frames."""
        if not frame or frame[0] != _MAGIC:
            return pickle.loads(frame)
        _, copy, count, skeleton_len = _HEADER.unpack_from(frame, 0)
        cursor = _HEADER.size
        slab = self._shm.buf
        buffers: List[Any] = []
        for _ in range(count):
            offset, nbytes = _DESCRIPTOR.unpack_from(frame, cursor)
            cursor += _DESCRIPTOR.size
            window = slab[offset : offset + nbytes]
            # bytearray, not bytes: NumPy reconstructs arrays directly over
            # the supplied buffer, and a bytes copy would hand every
            # consumer read-only arrays (breaking e.g. load_state_dict).
            buffers.append(bytearray(window) if copy else window)
        return pickle.loads(frame[cursor : cursor + skeleton_len], buffers=buffers)


def encode_frame(
    obj: Any, mailbox: Optional[ShardMailbox], region: int, copy: bool
) -> bytes:
    """Mailbox frame when a plane is attached, plain pickle otherwise."""
    if mailbox is not None:
        return mailbox.encode(obj, region, copy)
    return pickle.dumps(obj, protocol=5)


def decode_frame(frame: bytes, mailbox: Optional[ShardMailbox]) -> Any:
    """Decode either frame kind (see :meth:`ShardMailbox.decode`)."""
    if mailbox is not None:
        return mailbox.decode(frame)
    return pickle.loads(frame)
