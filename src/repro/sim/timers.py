"""Per-subsystem wall-clock instrumentation for the simulation engine.

Answers "where does a run actually spend its time?" — the question behind
every backend optimisation in this repo (the fleet backend attacks the slot
loop, fast-forward attacks quiet slots, the batched trainer attacks the
training path).  One :class:`EngineTimers` instance rides along a single
engine run and buckets wall-clock into:

* ``training`` — the real NumPy local rounds (serial or batched);
* ``policy``  — building observations and evaluating scheduling decisions;
* ``eval``    — held-out evaluation of the global model;
* ``ipc_send`` — coordinator-side encode + doorbell write of shard
  requests (zero for single-process runs);
* ``ipc_recv`` — coordinator blocked on shard replies; on a saturated
  host this includes the remote compute, so read it as "waiting on
  shards", not pure transport;
* ``merge``   — coordinator-side combination of shard outputs
  (observation-batch concatenation, tick folds, the final accountant
  merge);
* ``slot_loop`` (derived) — everything else: device advancement, energy
  accounting, queues, traces, fast-forward kernels.

Timers are disabled by default and cost nothing when off (``start`` /
``stop`` reduce to attribute checks); they never influence simulation
results.  ``repro-sim simulate/compare --profile`` prints the report and
:class:`~repro.analysis.runner.RunSummary` carries the shares for every
suite run.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["EngineTimers"]


class EngineTimers:
    """Wall-clock shares of one simulation run, by subsystem.

    Args:
        enabled: when ``False`` (default) every method is a cheap no-op.
    """

    #: Buckets measured directly; ``slot_loop`` is derived as the remainder.
    CATEGORIES = ("training", "policy", "eval", "ipc_send", "ipc_recv", "merge")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.seconds: Dict[str, float] = {name: 0.0 for name in self.CATEGORIES}
        self.total_s = 0.0

    def start(self) -> float:
        """Begin one timed section; returns the tick to pass to :meth:`stop`."""
        if not self.enabled:
            return 0.0
        return time.perf_counter()  # reprolint: allow(wall-clock): profiling measures real time by design

    def stop(self, category: str, tick: float) -> None:
        """Close a timed section opened by :meth:`start`."""
        if not self.enabled:
            return
        self.seconds[category] += time.perf_counter() - tick  # reprolint: allow(wall-clock): profiling only, never feeds sim state

    def stop_total(self, tick: float) -> None:
        """Close the whole-run section (bounds the derived remainder)."""
        if not self.enabled:
            return
        self.total_s += time.perf_counter() - tick  # reprolint: allow(wall-clock): profiling only, never feeds sim state

    # -- reporting ---------------------------------------------------------------

    def slot_loop_s(self) -> float:
        """Wall-clock not attributed to any measured category."""
        return max(0.0, self.total_s - sum(self.seconds.values()))

    def shares(self) -> Optional[Dict[str, float]]:
        """Fractional wall-clock share per subsystem (``None`` when disabled).

        Keys: the measured categories plus the derived ``slot_loop``
        remainder; values sum to 1 for any non-trivial run.
        """
        if not self.enabled or self.total_s <= 0.0:
            return None
        shares = {name: value / self.total_s for name, value in self.seconds.items()}
        shares["slot_loop"] = self.slot_loop_s() / self.total_s
        return shares

    def report(self) -> str:
        """A one-block plain-text profile for the CLI's ``--profile`` flag."""
        shares = self.shares()
        if shares is None:
            return "profile: timers disabled or nothing recorded"
        lines = [f"wall-clock profile ({self.total_s:.3f}s total)"]
        ordered = ("training", "policy", "eval", "ipc_send", "ipc_recv", "merge", "slot_loop")
        values = dict(self.seconds, slot_loop=self.slot_loop_s())
        for name in ordered:
            lines.append(f"  {name:<10} {values[name]:8.3f}s  {100.0 * shares[name]:5.1f}%")
        return "\n".join(lines)
