"""Per-slot traces recorded during a simulation run.

The Fig. 4/5/6 experiments need several time series from a run: cumulative
system energy, the task and virtual queue backlogs, the per-slot gradient-gap
sum, per-user gap traces, the lag/gap of every applied update, and the
accuracy-versus-time curve.  :class:`SimulationTrace` collects all of them;
series that would be too dense are sampled every ``trace_interval_slots``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TRACE_LEVELS", "SlotSample", "UpdateSample", "SimulationTrace"]

#: Telemetry volume knobs, from most to least detailed:
#:
#: * ``full``    — every series (the default; unchanged behaviour).
#: * ``summary`` — streamed aggregates only: decision counters and applied
#:   updates are kept, but the per-slot ``SlotSample`` series and the
#:   per-user gap traces (the two structures that grow as O(users x slots))
#:   are not materialised.  A megafleet run's telemetry stays O(updates).
#: * ``off``     — additionally drops the per-update samples; only scalar
#:   counters survive.
TRACE_LEVELS = ("full", "summary", "off")


@dataclass(frozen=True)
class SlotSample:
    """One sampled point of the per-slot system series."""

    slot: int
    time_s: float
    cumulative_energy_j: float
    queue_length: float
    virtual_queue_length: float
    gap_sum: float
    num_training: int
    num_ready: int


@dataclass(frozen=True)
class UpdateSample:
    """One update applied at the parameter server."""

    time_s: float
    user_id: int
    lag: int
    gradient_gap: float
    train_loss: float
    sync_round: bool


class SimulationTrace:
    """Collects every time series the evaluation figures need."""

    def __init__(self, trace_interval_slots: int = 10, level: str = "full") -> None:
        if trace_interval_slots <= 0:
            raise ValueError("trace_interval_slots must be positive")
        if level not in TRACE_LEVELS:
            raise ValueError(f"unknown trace level {level!r}; choose from {TRACE_LEVELS}")
        self.trace_interval_slots = trace_interval_slots
        self.level = level
        self.slot_samples: List[SlotSample] = []
        self.update_samples: List[UpdateSample] = []
        self.per_user_gaps: Dict[int, List[Tuple[float, float]]] = {}
        self._gap_lists: Optional[List[List[Tuple[float, float]]]] = None
        self.decisions: Dict[str, int] = {"schedule": 0, "idle": 0}
        self.corun_jobs = 0
        self.background_jobs = 0

    # -- recording -----------------------------------------------------------------

    def maybe_record_slot(self, sample: SlotSample) -> None:
        """Record a slot sample if it falls on the sampling grid."""
        if self.level != "full":
            return
        if sample.slot % self.trace_interval_slots == 0:
            self.slot_samples.append(sample)

    def record_update(self, sample: UpdateSample) -> None:
        """Record one applied update."""
        if self.level == "off":
            return
        self.update_samples.append(sample)

    def record_user_gap(self, user_id: int, time_s: float, gap: float) -> None:
        """Record one point of a user's gradient-gap trace (Fig. 5d)."""
        if self.level != "full":
            return
        self.per_user_gaps.setdefault(user_id, []).append((time_s, gap))

    def record_user_gaps(self, time_s: float, gaps: Sequence[float]) -> None:
        """Record one gap-trace point for every user at once.

        ``gaps[i]`` is user ``i``'s current gap.  Equivalent to calling
        :meth:`record_user_gap` for users ``0..len(gaps)-1`` in order; used
        by the fleet backend on the sampling grid and by the fast-forward
        path to backfill the (constant) gap traces of skipped slots.  The
        per-user lists are bound once and cached, so a bulk record is one
        append per user.
        """
        if self.level != "full":
            return
        lists = self._gap_lists
        if lists is None or len(lists) != len(gaps):
            lists = self._gap_lists = [
                self.per_user_gaps.setdefault(user_id, [])
                for user_id in range(len(gaps))
            ]
        for user_list, gap in zip(lists, gaps):
            user_list.append((time_s, gap))

    def record_decision(self, scheduled: bool, corun: bool = False) -> None:
        """Count one scheduling decision (and whether it started a co-run job)."""
        if scheduled:
            self.decisions["schedule"] += 1
            if corun:
                self.corun_jobs += 1
            else:
                self.background_jobs += 1
        else:
            self.decisions["idle"] += 1

    # -- accessors -------------------------------------------------------------------

    def times(self) -> List[float]:
        """Sampled slot times in seconds."""
        return [s.time_s for s in self.slot_samples]

    def energy_series_kj(self) -> List[float]:
        """Cumulative system energy (kJ) at each sampled slot."""
        return [s.cumulative_energy_j / 1000.0 for s in self.slot_samples]

    def queue_series(self) -> List[float]:
        """Task-queue backlog at each sampled slot."""
        return [s.queue_length for s in self.slot_samples]

    def virtual_queue_series(self) -> List[float]:
        """Virtual-queue backlog at each sampled slot."""
        return [s.virtual_queue_length for s in self.slot_samples]

    def gap_sum_series(self) -> List[float]:
        """Per-slot gradient-gap sum at each sampled slot."""
        return [s.gap_sum for s in self.slot_samples]

    def update_lags(self) -> List[int]:
        """Lag of every applied update (Fig. 5a lower panel)."""
        return [u.lag for u in self.update_samples]

    def update_gaps(self) -> List[float]:
        """Gradient gap of every applied update (Fig. 5a upper panel)."""
        return [u.gradient_gap for u in self.update_samples]

    def update_times(self) -> List[float]:
        """Time of every applied update."""
        return [u.time_s for u in self.update_samples]

    def user_gap_trace(self, user_id: int) -> List[Tuple[float, float]]:
        """The (time, gap) trace of one user (Fig. 5d)."""
        return list(self.per_user_gaps.get(user_id, []))

    def gap_variance_across_users(self) -> float:
        """Variance of the final per-user mean gaps (the Fig. 5d comparison)."""
        import numpy as np

        means = [
            float(np.mean([g for _, g in trace]))
            for trace in self.per_user_gaps.values()
            if trace
        ]
        if len(means) < 2:
            return 0.0
        return float(np.var(means))

    def schedule_fraction(self) -> float:
        """Fraction of decisions that scheduled training."""
        total = self.decisions["schedule"] + self.decisions["idle"]
        if total == 0:
            return 0.0
        return self.decisions["schedule"] / total
