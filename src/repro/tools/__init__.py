"""Developer tooling that ships with the repro tree.

``repro.tools.reprolint`` is the project's static-analysis pass: an
AST-level linter that enforces the determinism, lock-discipline, and
checkpoint-coverage contracts documented in ``docs/determinism.md``.
It is wired into ``repro-sim lint`` and the ``static-analysis`` CI job.
"""

__all__ = ["reprolint"]
