"""reprolint: the project's determinism & concurrency static-analysis pass.

Rule catalog (see docs/determinism.md for rationale):

==================  ==============================================================
rule id             checks
==================  ==============================================================
wall-clock          no ``time.time``/``datetime.now``-style host-clock reads
global-rng          no ``random.*`` / legacy ``numpy.random.*`` global RNG
set-iteration       no set iteration feeding order-sensitive accumulation
id-key              no ``id()``-derived container keys
lock-guard          ``# guarded-by: <lock>`` attrs only touched under the lock
checkpoint-coverage ``__init__`` attrs must be checkpointed or ``# reprolint: static``
==================  ==============================================================
"""

from repro.tools.reprolint.cli import default_rules, main, run
from repro.tools.reprolint.framework import (
    Finding,
    LintConfig,
    Rule,
    SourceFile,
    format_json,
    format_text,
    lint_paths,
    load_config,
)

__all__ = [
    "Finding",
    "LintConfig",
    "Rule",
    "SourceFile",
    "default_rules",
    "format_json",
    "format_text",
    "lint_paths",
    "load_config",
    "main",
    "run",
]
