"""``python -m repro.tools.reprolint`` entry point."""

from repro.tools.reprolint.cli import main

if __name__ == "__main__":
    main()
