"""Command-line entry point for reprolint.

Runnable three equivalent ways::

    repro-sim lint src
    python -m repro.tools.reprolint src
    python -c "from repro.tools.reprolint.cli import main; main(['src'])"

Exit status: 0 when clean, 1 when any finding survives suppression,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.tools.reprolint.framework import (
    LintConfig,
    Rule,
    format_json,
    format_text,
    lint_paths,
    load_config,
)
from repro.tools.reprolint.rules_blocking import UnboundedBlockingRule
from repro.tools.reprolint.rules_checkpoint import CheckpointCoverageRule
from repro.tools.reprolint.rules_determinism import (
    GlobalRngRule,
    IdKeyRule,
    SetIterationRule,
    WallClockRule,
)
from repro.tools.reprolint.rules_locking import LockGuardRule
from repro.tools.reprolint.rules_shm import ShmLifecycleRule

__all__ = ["default_rules", "build_parser", "run", "main"]


def default_rules() -> List[Rule]:
    """The shipped rule set, in catalog order (docs/determinism.md)."""
    return [
        WallClockRule(),
        GlobalRngRule(),
        SetIterationRule(),
        IdKeyRule(),
        LockGuardRule(),
        CheckpointCoverageRule(),
        UnboundedBlockingRule(),
        ShmLifecycleRule(),
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST lint pass enforcing the repro determinism contract",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files/dirs to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.reprolint] in pyproject.toml",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None, stdout=None) -> int:
    out = stdout if stdout is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}: {rule.summary}", file=out)
        return 0
    if args.rule:
        known = {rule.id for rule in rules}
        unknown = [r for r in args.rule if r not in known]
        if unknown:
            print(f"reprolint: unknown rule(s): {', '.join(unknown)}", file=out)
            return 2
        rules = [rule for rule in rules if rule.id in set(args.rule)]
    if args.no_config:
        config = LintConfig()
    else:
        anchor = Path(args.paths[0]) if args.paths else Path.cwd()
        config = load_config(anchor)
    findings = lint_paths(args.paths, rules, config)
    if args.format == "json":
        print(format_json(findings), file=out)
    else:
        print(format_text(findings), file=out)
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> None:
    sys.exit(run(argv))
