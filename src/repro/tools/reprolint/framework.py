"""Core machinery for ``reprolint``: findings, suppressions, rules, runner.

The linter is a thin harness around ``ast``.  Each rule inspects one
parsed source file at a time and yields :class:`Finding` objects; the
runner handles file discovery, suppression comments, configuration from
``pyproject.toml``, and output formatting.

Suppression syntax (checked on every physical line a node spans)::

    x = time.time()  # reprolint: allow(wall-clock): job metadata, never sim state
    self.config = config  # reprolint: static

``allow(<rule>[, <rule>...])`` silences the named rules; ``static`` is
shorthand understood by the checkpoint-coverage rule for attributes that
are rebuilt from configuration rather than checkpointed.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "LintConfig",
    "load_config",
    "iter_python_files",
    "lint_paths",
    "format_text",
    "format_json",
]

_ALLOW_RE = re.compile(r"#\s*reprolint:\s*allow\(([^)]*)\)")
_STATIC_RE = re.compile(r"#\s*reprolint:\s*static\b")
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class SourceFile:
    """A parsed module plus the per-line annotations rules consult."""

    def __init__(self, path: Path, text: str, display_path: Optional[str] = None):
        self.path = path
        self.display_path = display_path or str(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        # line number (1-based) -> set of rule ids allowed on that line
        self.allowed: Dict[int, Set[str]] = {}
        # lines carrying "# reprolint: static"
        self.static_lines: Set[int] = set()
        # line number -> lock name from "# guarded-by: <lock>"
        self.guarded_by: Dict[int, str] = {}
        for lineno, line in enumerate(self.lines, start=1):
            if "#" not in line:
                continue
            allow = _ALLOW_RE.search(line)
            if allow:
                names = {n.strip() for n in allow.group(1).split(",") if n.strip()}
                self.allowed.setdefault(lineno, set()).update(names)
            if _STATIC_RE.search(line):
                self.static_lines.add(lineno)
            guarded = _GUARDED_RE.search(line)
            if guarded:
                self.guarded_by[lineno] = guarded.group(1)

    # -- suppression helpers -------------------------------------------------------

    def node_lines(self, node: ast.AST) -> range:
        start = getattr(node, "lineno", None)
        if start is None:
            return range(0)
        end = getattr(node, "end_lineno", None) or start
        return range(start, end + 1)

    def is_allowed(self, rule: str, node: ast.AST) -> bool:
        for lineno in self.node_lines(node):
            names = self.allowed.get(lineno)
            if names and (rule in names or "*" in names):
                return True
        return False

    def is_static(self, node: ast.AST) -> bool:
        return any(lineno in self.static_lines for lineno in self.node_lines(node))

    def guard_for(self, node: ast.AST) -> Optional[str]:
        for lineno in self.node_lines(node):
            lock = self.guarded_by.get(lineno)
            if lock:
                return lock
        return None


class Rule:
    """Base class for lint rules.  Subclasses set ``id`` and ``summary``."""

    id: str = ""
    summary: str = ""

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=src.display_path,
            line=getattr(node, "lineno", 0),
            message=message,
        )


# -- configuration ------------------------------------------------------------------


@dataclass
class LintConfig:
    """Settings from ``[tool.reprolint]`` in pyproject.toml."""

    exclude: List[str] = field(default_factory=list)
    disable: List[str] = field(default_factory=list)


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Read ``[tool.reprolint]`` from the nearest pyproject.toml, if any.

    Falls back to an empty config when tomllib is unavailable (< 3.11) or
    no pyproject.toml is found; the linter stays fully functional either
    way, configuration only adds excludes/disables.
    """
    try:
        import tomllib
    except ImportError:  # Python < 3.11 - config file is optional
        return LintConfig()
    here = (start or Path.cwd()).resolve()
    candidates = [here] if here.is_dir() else [here.parent]
    candidates += list(candidates[0].parents)
    for directory in candidates:
        pyproject = directory / "pyproject.toml"
        if pyproject.is_file():
            with open(pyproject, "rb") as fh:
                data = tomllib.load(fh)
            section = data.get("tool", {}).get("reprolint", {})
            return LintConfig(
                exclude=list(section.get("exclude", [])),
                disable=list(section.get("disable", [])),
            )
    return LintConfig()


# -- runner -------------------------------------------------------------------------


def iter_python_files(paths: Sequence[str], config: LintConfig) -> Iterator[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            posix = candidate.as_posix()
            if any(fnmatch.fnmatch(posix, pattern) for pattern in config.exclude):
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint every python file under ``paths`` and return sorted findings."""
    config = config or LintConfig()
    active = [rule for rule in rules if rule.id not in config.disable]
    findings: List[Finding] = []
    for path in iter_python_files(paths, config):
        try:
            text = path.read_text(encoding="utf-8")
            src = SourceFile(path, text)
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    rule="parse-error",
                    path=str(path),
                    line=getattr(exc, "lineno", 0) or 0,
                    message=f"could not parse: {exc}",
                )
            )
            continue
        for rule in active:
            for finding in rule.check(src):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# -- output -------------------------------------------------------------------------


def format_text(findings: Iterable[Finding]) -> str:
    lines = [f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in findings]
    count = len(lines)
    if count:
        noun = "finding" if count == 1 else "findings"
        lines.append(f"reprolint: {count} {noun}")
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    payload = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
