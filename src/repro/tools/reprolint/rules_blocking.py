"""Concurrency rule: forbid unbounded blocking calls.

A coordinator that calls ``Connection.recv()`` on a dead worker's pipe, or
``Process.join()`` / ``Queue.get()`` without a timeout, blocks forever —
the exact failure mode the shard supervisor exists to repair (a hung run
is strictly worse than a failed one: nothing restarts it).  This rule
flags the blocking primitives that accept no deadline:

* any ``.recv(...)`` call — pipe/socket receives have no timeout
  parameter at all; bounded code polls first (``Connection.poll``/
  ``select``) and only then drains the guaranteed-ready payload;
* ``.get()`` / ``.join()`` called with no positional arguments and no
  ``timeout=`` keyword — the zero-argument forms of ``Queue.get``,
  ``Process.join``, ``Thread.join`` block unboundedly, while the
  argumented forms (``dict.get(key)``, ``",".join(parts)``,
  ``join(timeout=10)``) are either bounded or not blocking at all.

The matching is name-based (no type inference), so innocuous methods that
happen to share these names can trip it; that is deliberate — each
intentional blocking call carries a visible
``# reprolint: allow(unbounded-blocking): <reason>`` audit entry instead
of being invisible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.reprolint.framework import Finding, Rule, SourceFile

__all__ = ["UnboundedBlockingRule"]

#: Methods whose zero-positional-argument, no-``timeout=`` call form blocks
#: without a deadline.
_TIMEOUTLESS_WHEN_BARE = ("get", "join")


def _has_timeout_kwarg(node: ast.Call) -> bool:
    return any(keyword.arg == "timeout" for keyword in node.keywords)


class UnboundedBlockingRule(Rule):
    id = "unbounded-blocking"
    summary = (
        "forbid blocking calls without a deadline (.recv, bare .get/.join)"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "recv":
                if src.is_allowed(self.id, node):
                    continue
                yield self.finding(
                    src,
                    node,
                    ".recv() blocks forever on a dead peer; poll with a "
                    "deadline first (Connection.poll / select) and drain "
                    "only guaranteed-ready data. Suppress with "
                    "'# reprolint: allow(unbounded-blocking): <reason>' "
                    "when the wait is provably bounded.",
                )
            elif (
                func.attr in _TIMEOUTLESS_WHEN_BARE
                and not node.args
                and not _has_timeout_kwarg(node)
            ):
                if src.is_allowed(self.id, node):
                    continue
                yield self.finding(
                    src,
                    node,
                    f"bare .{func.attr}() blocks without a deadline; pass "
                    "timeout= (and handle expiry) so a dead or hung peer "
                    "cannot wedge this caller. Suppress with "
                    "'# reprolint: allow(unbounded-blocking): <reason>' "
                    "when the wait is provably bounded.",
                )
