"""Checkpoint-coverage rule: no instance attribute may evade the snapshot.

A class participates in the checkpoint contract when it defines a
``state_dict``/``checkpoint_state`` method or declares a
``_CHECKPOINT_ATTRS`` tuple (for classes like ``CouplingCore`` whose
snapshot is taken externally by ``CoordinatorState.capture``).  For
such classes, every attribute assigned in ``__init__`` must be either

* referenced in the class's own snapshot/restore methods
  (``state_dict``, ``load_state_dict``, ``checkpoint_state``,
  ``restore_state``), or
* listed in ``_CHECKPOINT_ATTRS``, or
* explicitly exempted with a trailing ``# reprolint: static`` comment,
  meaning it is rebuilt from configuration and deliberately not part of
  the mutable state.

This makes "I added a field and forgot to checkpoint it" a CI failure
instead of a silently-wrong resume.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.tools.reprolint.framework import Finding, Rule, SourceFile

__all__ = ["CheckpointCoverageRule"]

# Methods whose presence marks a class as checkpoint-bearing ...
_CONTRACT_METHODS = ("state_dict", "checkpoint_state")
# ... and methods whose bodies count as coverage for an attribute.
_COVERING_METHODS = (
    "state_dict",
    "load_state_dict",
    "checkpoint_state",
    "restore_state",
)


def _self_attr(node: ast.AST) -> str:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _declared_attrs(cls: ast.ClassDef) -> Set[str]:
    """Names listed in a class-level ``_CHECKPOINT_ATTRS`` tuple/list."""
    declared: Set[str] = set()
    for stmt in cls.body:
        value = None
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "_CHECKPOINT_ATTRS"
                for t in stmt.targets
            ):
                value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "_CHECKPOINT_ATTRS"
            ):
                value = stmt.value
        if isinstance(value, (ast.Tuple, ast.List)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    declared.add(elt.value)
    return declared


class CheckpointCoverageRule(Rule):
    id = "checkpoint-coverage"
    summary = "__init__ attributes must be checkpointed or marked static"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    def _check_class(self, src: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
        methods: Dict[str, ast.FunctionDef] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[stmt.name] = stmt
        declared = _declared_attrs(cls)
        has_contract = declared or any(n in methods for n in _CONTRACT_METHODS)
        init = methods.get("__init__")
        if not has_contract or init is None:
            return

        covered: Set[str] = set(declared)
        for name in _COVERING_METHODS:
            method = methods.get(name)
            if method is None:
                continue
            for node in ast.walk(method):
                attr = _self_attr(node)
                if attr:
                    covered.add(attr)

        seen: Set[str] = set()
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            else:
                continue
            flat = []
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    flat.extend(target.elts)
                else:
                    flat.append(target)
            for target in flat:
                attr = _self_attr(target)
                if not attr or attr in seen:
                    continue
                seen.add(attr)
                if attr in covered:
                    continue
                if src.is_static(stmt) or src.is_allowed(self.id, stmt):
                    continue
                yield self.finding(
                    src,
                    stmt,
                    f"{cls.name}.{attr} is assigned in __init__ but never "
                    "appears in state_dict/load_state_dict/_CHECKPOINT_ATTRS; "
                    "checkpoint it, or mark the assignment '# reprolint: "
                    "static' if it is rebuilt from config.",
                )
