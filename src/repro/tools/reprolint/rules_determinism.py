"""Determinism rules: the AST patterns that can break bitwise equality.

The engine's contract (docs/determinism.md) is that loop, fleet,
fast-forward, sharded, and checkpoint/resume executions produce
bit-identical telemetry.  Four source-level patterns are the classic
ways such a contract rots:

* wall-clock reads leaking into simulation state,
* unseeded process-global RNG,
* iteration over ``set``/``frozenset`` feeding accumulation (hash order
  varies across processes with different ``PYTHONHASHSEED``),
* ``id()``-keyed containers (memory addresses differ run to run and can
  alias after garbage collection).

Each rule can be silenced per line with ``# reprolint: allow(<rule>)``
plus an audit reason.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.tools.reprolint.framework import Finding, Rule, SourceFile

__all__ = [
    "WallClockRule",
    "GlobalRngRule",
    "SetIterationRule",
    "IdKeyRule",
]

# Fully-qualified callables that read the wall clock / host timers.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

# numpy.random attributes that are *not* the legacy global-state API.
_NP_RANDOM_OK = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _import_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the fully-qualified names they were imported as."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never hit stdlib time/random/numpy
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _resolve(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted name via the import map."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


class WallClockRule(Rule):
    id = "wall-clock"
    summary = "forbid wall-clock/host-timer reads (time.time, datetime.now, ...)"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        imports = _import_map(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve(node.func, imports)
            if name in _WALL_CLOCK and not src.is_allowed(self.id, node):
                yield self.finding(
                    src,
                    node,
                    f"{name}() reads the host clock; simulation state must "
                    "derive time from slot indices. Suppress with "
                    "'# reprolint: allow(wall-clock): <reason>' if this is "
                    "metadata/profiling that never feeds simulation state.",
                )


class GlobalRngRule(Rule):
    id = "global-rng"
    summary = "forbid unseeded global RNG (random.*, legacy numpy.random.*)"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        imports = _import_map(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve(node.func, imports)
            if name is None:
                continue
            flagged = None
            if name.startswith("random."):
                flagged = name
            elif name.startswith("numpy.random."):
                head = name[len("numpy.random.") :].split(".")[0]
                if head not in _NP_RANDOM_OK:
                    flagged = name
            if flagged and not src.is_allowed(self.id, node):
                yield self.finding(
                    src,
                    node,
                    f"{flagged}() uses process-global RNG state; use a "
                    "numpy.random.Generator seeded from the experiment "
                    "config instead.",
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


# Builtins whose output depends on input *order*, so feeding them a set
# is hash-order-dependent.  sorted/min/max/len/any/all are order-safe.
_ORDER_SENSITIVE_CALLS = ("sum", "list", "tuple", "enumerate")


class SetIterationRule(Rule):
    id = "set-iteration"
    summary = "forbid iterating sets into order-sensitive accumulation"

    def _flag(self, src: SourceFile, node: ast.AST, what: str) -> Iterator[Finding]:
        if not src.is_allowed(self.id, node):
            yield self.finding(
                src,
                node,
                f"{what} iterates a set; hash order varies across processes, "
                "so order-sensitive accumulation (float sums, list builds) is "
                "non-deterministic. Iterate 'sorted(<set>)' instead.",
            )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield from self._flag(src, node, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield from self._flag(src, node, "comprehension")
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield from self._flag(src, node, f"{node.func.id}()")


class IdKeyRule(Rule):
    id = "id-key"
    summary = "forbid id()-derived keys (addresses vary per run, alias after GC)"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and not src.is_allowed(self.id, node)
            ):
                yield self.finding(
                    src,
                    node,
                    "id() returns a memory address: it differs between runs "
                    "and can be reused after garbage collection, aliasing "
                    "cache keys. Key on the object itself (identity hash "
                    "keeps a reference) or on stable content.",
                )
