"""Lock-discipline rule: guarded attributes only touched under their lock.

An attribute is declared guarded by a trailing comment on its assignment
in ``__init__``::

    self._running = set()  # guarded-by: _lock

Every read or write of ``self._running`` in any other method must then
be lexically inside a ``with self._lock:`` block.  This is the static
version of the invariant the PR-6 review had to repair by hand in
``ExperimentService.run_job``: a check-then-act across two separate
lock holds.

The analysis is lexical and deliberately conservative: a nested
function defined inside a method starts with *no* locks held, because
closures can escape the ``with`` block and run later on another thread.
Use ``# reprolint: allow(lock-guard): <reason>`` for audited
exceptions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.tools.reprolint.framework import Finding, Rule, SourceFile

__all__ = ["LockGuardRule"]


def _self_attr(node: ast.AST) -> str:
    """Return the attribute name if node is ``self.<attr>``, else ''."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _guarded_attrs(src: SourceFile, init: ast.FunctionDef) -> Dict[str, str]:
    """Collect {attr: lock} from ``# guarded-by:`` comments in __init__."""
    guarded: Dict[str, str] = {}
    for stmt in ast.walk(init):
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        lock = src.guard_for(stmt)
        if not lock:
            continue
        flat = []
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                flat.extend(target.elts)
            else:
                flat.append(target)
        for target in flat:
            attr = _self_attr(target)
            if attr:
                guarded[attr] = lock
    return guarded


class LockGuardRule(Rule):
    id = "lock-guard"
    summary = "guarded-by attributes must be accessed under their lock"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    def _check_class(self, src: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
        init = None
        methods: List[ast.FunctionDef] = []
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "__init__":
                    init = stmt
                else:
                    methods.append(stmt)
        if init is None:
            return
        guarded = _guarded_attrs(src, init)
        if not guarded:
            return
        for method in methods:
            violations: List[Tuple[ast.AST, str, str]] = []
            for body_stmt in method.body:
                self._visit(body_stmt, guarded, frozenset(), violations)
            for access, attr, lock in violations:
                if src.is_allowed(self.id, access):
                    continue
                yield self.finding(
                    src,
                    access,
                    f"self.{attr} is declared '# guarded-by: {lock}' but is "
                    f"accessed in {cls.name}.{method.name} outside a "
                    f"'with self.{lock}:' block.",
                )

    def _visit(
        self,
        node: ast.AST,
        guarded: Dict[str, str],
        held: "frozenset[str]",
        out: List[Tuple[ast.AST, str, str]],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Closures may escape the lock scope and run later: restart
            # with no locks held.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._visit(child, guarded, frozenset(), out)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                lock_attr = _self_attr(item.context_expr)
                if lock_attr:
                    acquired.add(lock_attr)
                self._visit(item.context_expr, guarded, held, out)
            inner = held | acquired
            for child in node.body:
                self._visit(child, guarded, frozenset(inner), out)
            return
        attr = _self_attr(node)
        if attr and attr in guarded and guarded[attr] not in held:
            out.append((node, attr, guarded[attr]))
        for child in ast.iter_child_nodes(node):
            self._visit(child, guarded, held, out)
