"""Resource rule: shared-memory segments need exception-safe lifecycles.

A ``multiprocessing.shared_memory.SharedMemory`` segment is a named kernel
object: it outlives the process that created it unless someone calls
``unlink()``, and every attached mapping pins the segment's pages until
``close()``.  A constructor that raises *after* the segment exists — or a
create/attach whose cleanup only runs on the happy path — therefore leaks
``/dev/shm`` entries that survive crashes, respawns and test runs (the
chaos suite globs for exactly this).

This rule flags every ``SharedMemory(...)`` call site unless its enclosing
function visibly owns the failure path:

* the enclosing function must contain a ``try`` statement whose handler or
  ``finally`` block calls ``.close()`` — the mapping must be released even
  when construction of whatever wraps the segment fails;
* a *creating* call (``create=True``) must additionally reach ``.unlink()``
  on that failure path — a brand-new segment that escapes its creator by
  exception is unreachable garbage by definition;
* a module-level ``SharedMemory(...)`` call is always flagged: there is no
  enclosing frame to own the lifecycle.

The matching is syntactic (no data-flow), so a helper that constructs a
segment and hands ownership to a caller that cleans up trips it; that is
deliberate — such transfers of ownership carry a visible
``# reprolint: allow(shm-lifecycle): <reason>`` audit entry instead of
being invisible.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.tools.reprolint.framework import Finding, Rule, SourceFile

__all__ = ["ShmLifecycleRule"]


def _is_shared_memory_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return False


def _creates_segment(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return not (
                isinstance(value, ast.Constant) and value.value is False
            )
    return False


def _cleanup_calls(statements) -> Set[str]:
    """Names of ``.close()`` / ``.unlink()`` style calls under ``statements``."""
    names: Set[str] = set()
    for statement in statements:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink", "destroy")
            ):
                names.add(node.func.attr)
    return names


def _failure_path_cleanup(function: ast.AST) -> Set[str]:
    """Cleanup calls reachable on an exception path inside ``function``."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                names.update(_cleanup_calls(handler.body))
            names.update(_cleanup_calls(node.finalbody))
    return names


class ShmLifecycleRule(Rule):
    id = "shm-lifecycle"
    summary = (
        "SharedMemory create/attach must close() (and unlink() when "
        "creating) on every exit path"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        # Map every node to its nearest enclosing function once.
        enclosing: dict = {}

        def visit(node: ast.AST, function: Optional[ast.AST]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    enclosing[child] = function
                    visit(child, child)
                else:
                    enclosing[child] = function
                    visit(child, function)

        visit(src.tree, None)

        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call) and _is_shared_memory_call(node)):
                continue
            if src.is_allowed(self.id, node):
                continue
            function = enclosing.get(node)
            if function is None:
                yield self.finding(
                    src,
                    node,
                    "module-level SharedMemory(...) has no owner for its "
                    "lifecycle; construct segments inside a function that "
                    "close()s (and unlink()s, if creating) on failure. "
                    "Suppress with "
                    "'# reprolint: allow(shm-lifecycle): <reason>'.",
                )
                continue
            cleanup = _failure_path_cleanup(function)
            missing: Tuple[str, ...] = ()
            if not cleanup & {"close", "destroy"}:
                missing += ("close()",)
            if _creates_segment(node) and not cleanup & {"unlink", "destroy"}:
                missing += ("unlink()",)
            if missing:
                yield self.finding(
                    src,
                    node,
                    "SharedMemory(...) without "
                    + " or ".join(missing)
                    + " on an exception path (try/except or finally) in the "
                    "enclosing function; a constructor that raises after "
                    "the segment exists leaks /dev/shm entries. Suppress "
                    "with '# reprolint: allow(shm-lifecycle): <reason>' "
                    "when ownership is transferred elsewhere.",
                )
