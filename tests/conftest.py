"""Shared fixtures for the test suite.

Simulation runs are comparatively expensive, so the fixtures that run full
(smoke-scale) simulations are session-scoped and shared across the
integration tests that assert on different aspects of the same run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import OnlinePolicy
from repro.core.policies import ImmediatePolicy
from repro.energy.measurements import MeasurementTable
from repro.fl.dataset import SyntheticCifar10
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine, SimulationResult


@pytest.fixture(scope="session")
def table() -> MeasurementTable:
    """The Table II/III calibration data."""
    return MeasurementTable()


@pytest.fixture(scope="session")
def smoke_config() -> SimulationConfig:
    """A seconds-scale simulation configuration used by integration tests.

    The synthetic task is made easier than the paper-scale default (single
    Gaussian cluster per class, higher learning rate) so that the few dozen
    updates a 700-slot run produces already move accuracy well above chance.
    """
    return SimulationConfig(
        num_users=6,
        total_slots=700,
        app_arrival_prob=0.01,
        seed=7,
        num_train_samples=600,
        num_test_samples=300,
        eval_interval_slots=350,
        trace_interval_slots=10,
        class_separation=2.5,
        clusters_per_class=1,
        label_noise=0.0,
        learning_rate=0.05,
    )


@pytest.fixture(scope="session")
def smoke_dataset(smoke_config) -> SyntheticCifar10:
    """Dataset shared by every smoke-scale simulation."""
    cfg = smoke_config
    return SyntheticCifar10(
        num_train=cfg.num_train_samples,
        num_test=cfg.num_test_samples,
        num_classes=cfg.num_classes,
        feature_dim=cfg.feature_dim,
        class_separation=cfg.class_separation,
        noise_std=cfg.noise_std,
        label_noise=cfg.label_noise,
        clusters_per_class=cfg.clusters_per_class,
        seed=cfg.seed,
    )


@pytest.fixture(scope="session")
def immediate_result(smoke_config, smoke_dataset) -> SimulationResult:
    """One smoke-scale run of the Immediate policy."""
    return SimulationEngine(smoke_config, ImmediatePolicy(), dataset=smoke_dataset).run()


@pytest.fixture(scope="session")
def online_result(smoke_config, smoke_dataset) -> SimulationResult:
    """One smoke-scale run of the online policy at V=4000, Lb=500."""
    policy = OnlinePolicy(v=4000.0, staleness_bound=500.0)
    return SimulationEngine(smoke_config, policy, dataset=smoke_dataset).run()


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator for unit tests."""
    return np.random.default_rng(123)


def make_observation(**overrides):
    """Build a DeviceObservation with Pixel 2 defaults for policy unit tests."""
    from repro.core.policies import DeviceObservation

    defaults = dict(
        user_id=0,
        slot=10,
        slot_seconds=1.0,
        device_name="pixel2",
        app_running=False,
        app_name=None,
        power_corun_w=2.5,
        power_app_w=2.1,
        power_training_w=1.35,
        power_idle_w=0.689,
        estimated_lag=2,
        momentum_norm=1.0,
        learning_rate=0.01,
        momentum_coeff=0.9,
        training_duration_slots=223,
        waiting_slots=0,
        current_gap=0.0,
    )
    defaults.update(overrides)
    return DeviceObservation(**defaults)


@pytest.fixture()
def observation_factory():
    """Factory fixture wrapping :func:`make_observation`."""
    return make_observation
