"""Tests for the experiment runners and the reporting helpers."""

import pytest

from repro.analysis.experiments import (
    ExperimentScale,
    fig1_power_schedules,
    fig2_fps_traces,
    fig5c_time_to_accuracy,
    fig6_arrival_sweep,
    paper_config,
    run_policy,
    table2_rows,
    table3_overhead_rows,
)
from repro.analysis.reporting import format_csv, format_table, summarize_series
from repro.core.policies import ImmediatePolicy


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_none_rendering(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_csv(self):
        text = format_csv(["a", "b"], [[1, 2], [3, None]])
        assert text.splitlines() == ["a,b", "1,2", "3,"]
        with pytest.raises(ValueError):
            format_csv(["a"], [[1, 2]])

    def test_summarize_series(self):
        summary = summarize_series([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["final"] == 3.0
        assert summary["count"] == 3
        with pytest.raises(ValueError):
            summarize_series([])


class TestStaticExperiments:
    def test_table2_rows_shape(self):
        rows = table2_rows()
        # 4 devices x (1 training row + 8 app rows).
        assert len(rows) == 4 * 9
        pixel2_map = next(r for r in rows if r[0] == "pixel2" and r[1] == "map")
        assert pixel2_map[5] == pytest.approx(pixel2_map[6], abs=3.0)

    def test_table3_rows(self):
        rows = table3_overhead_rows()
        assert len(rows) == 4
        assert all(0.0 < row[3] < 10.0 for row in rows)

    def test_fig1_rows_reproduce_savings(self):
        rows = fig1_power_schedules(devices=("pixel2",), seed=0)
        assert len(rows) == 8
        savings = {row[1]: row[5] for row in rows}
        # Pixel 2 savings cluster in the paper's 20-40% band.
        assert all(15.0 < s < 45.0 for s in savings.values())

    def test_fig2_traces(self):
        results = fig2_fps_traces(apps=("angrybird",), duration_s=60, seed=0)
        entry = results["angrybird"]
        assert len(entry["alone"]) == 60
        assert entry["relative_degradation"] < 0.10


class TestSimulationExperiments:
    def test_paper_config_scales(self):
        paper = paper_config()
        assert paper.num_users == 25 and paper.total_slots == 10_800
        bench = paper_config(ExperimentScale.benchmark())
        assert bench.total_slots == 3600
        smoke = paper_config(ExperimentScale.smoke(), num_train_samples=500)
        assert smoke.num_train_samples == 500

    def test_run_policy_smoke(self):
        config = paper_config(
            ExperimentScale.smoke(), num_train_samples=400, num_test_samples=200
        )
        result = run_policy(config, ImmediatePolicy())
        assert result.total_energy_kj() > 0.0

    def test_fig6_sweep_structure(self):
        scale = ExperimentScale(num_users=5, total_slots=400, app_arrival_prob=0.01,
                                seed=0, eval_interval_slots=200)
        sweep = fig6_arrival_sweep(arrival_probs=(0.001, 0.05), scale=scale)
        assert set(sweep) == {"online", "immediate", "offline"}
        for series in sweep.values():
            assert len(series) == 2
            assert all(len(point) == 3 for point in series)

    def test_fig5c_table_structure(self):
        scale = ExperimentScale(num_users=5, total_slots=400, app_arrival_prob=0.01,
                                seed=0, eval_interval_slots=200)
        table = fig5c_time_to_accuracy(targets=(0.2,), seeds=(0,), scale=scale)
        assert set(table) == {"online", "offline", "immediate", "sync"}
        for per_target in table.values():
            assert list(per_target) == [0.2]
            assert len(per_target[0.2]) == 1
