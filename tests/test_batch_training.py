"""Batched multi-client training backend: equivalence, memory, profiling.

The contract under test (see ``src/repro/fl/batch.py``): executing many
clients' concurrent local rounds as one stacked tensor program produces,
per client, the same updated parameters, train losses, momentum state and
RNG trajectory as serial ``FLClient.local_train`` calls — to tight
numerical tolerance — and full simulation runs driven by the batched
backend reproduce the serial runs' decision, queue and energy traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.offline import OfflinePolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import ImmediatePolicy, SyncPolicy
from repro.fl.batch import BatchTrainer, TrainRequest
from repro.fl.client import FLClient
from repro.fl.dataset import SyntheticCifar10, partition_dirichlet, partition_iid
from repro.fl.layers import Dropout, Linear, ReLU
from repro.fl.model import Sequential, build_lenet5, build_mlp
from repro.fl.server import AsyncUpdateRule, ParameterServer
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine

RTOL = 1e-9
ATOL = 1e-12


def _make_clients(
    num_clients: int,
    num_samples: int,
    dirichlet: bool = False,
    lenet: bool = False,
    batch_size: int = 20,
    local_epochs: int = 1,
    dropout: bool = False,
    seed: int = 0,
):
    """Two identical client fleets would diverge only through training."""
    image_shape = (3, 16, 16) if lenet else None
    dataset = SyntheticCifar10(
        num_train=num_samples, num_test=40, feature_dim=24, image_shape=image_shape, seed=seed
    )
    rng = np.random.default_rng(seed + 17)
    if dirichlet:
        partitions = partition_dirichlet(
            dataset.x_train, dataset.y_train, num_clients, rng, alpha=0.3, num_classes=10
        )
    else:
        partitions = partition_iid(dataset.x_train, dataset.y_train, num_clients, rng)

    def build_model():
        if lenet:
            return build_lenet5(in_channels=3, image_size=16, seed=seed)
        if dropout:
            model_rng = np.random.default_rng(seed)
            return Sequential(
                [
                    Linear(24, 32, rng=model_rng),
                    ReLU(),
                    Dropout(0.3, rng=np.random.default_rng(seed + 3)),
                    Linear(32, 10, rng=model_rng),
                ]
            )
        return build_mlp(input_dim=24, hidden_dims=(32, 16), seed=seed)

    return [
        FLClient(
            user_id=user,
            partition=partitions[user],
            model=build_model(),
            batch_size=batch_size,
            local_epochs=local_epochs,
            seed=100 + user,
        )
        for user in range(num_clients)
    ]


def _assert_round_parity(serial_updates, batched_updates):
    for serial, batched in zip(serial_updates, batched_updates):
        assert serial.user_id == batched.user_id
        assert serial.num_samples == batched.num_samples
        assert serial.num_batches == batched.num_batches
        assert np.allclose(serial.params, batched.params, rtol=RTOL, atol=ATOL)
        assert np.allclose(serial.delta, batched.delta, rtol=RTOL, atol=ATOL)
        assert serial.train_loss == pytest.approx(batched.train_loss, rel=RTOL, abs=ATOL)
        assert serial.momentum_norm == pytest.approx(batched.momentum_norm, rel=RTOL, abs=ATOL)


class TestBatchTrainerParity:
    """BatchTrainer vs serial local_train on identical twin fleets."""

    @pytest.mark.parametrize("dirichlet", [False, True])
    def test_multi_round_parity_ragged_shards(self, dirichlet):
        # 5 clients x 233 samples: every shard has a ragged tail batch; the
        # dirichlet variant spreads shard sizes across geometry groups.
        serial = _make_clients(5, 233, dirichlet=dirichlet)
        batched = _make_clients(5, 233, dirichlet=dirichlet)
        trainer = BatchTrainer(batched)
        base = serial[0].model.get_flat_params()
        for round_number in range(3):
            serial_updates = [c.local_train(base, round_number) for c in serial]
            batched_updates = trainer.train(
                [TrainRequest(u, base, round_number) for u in range(5)],
                include_params=True,
            )
            _assert_round_parity(serial_updates, batched_updates)
            base = base + sum(u.delta for u in serial_updates) / 5
        # Persistent state parity: models, momentum and RNG streams.
        for cs, cb in zip(serial, batched):
            assert np.allclose(
                cs.model.get_flat_params(), cb.model.get_flat_params(), rtol=RTOL, atol=ATOL
            )
            assert cs.rounds_completed == cb.rounds_completed
            assert cs._rng.random() == cb._rng.random()

    def test_lenet_conv_pool_path(self):
        serial = _make_clients(4, 96, lenet=True)
        batched = _make_clients(4, 96, lenet=True)
        trainer = BatchTrainer(batched)
        base = serial[0].model.get_flat_params()
        serial_updates = [c.local_train(base, 0) for c in serial]
        batched_updates = trainer.train(
            [TrainRequest(u, base, 0) for u in range(4)], include_params=True
        )
        _assert_round_parity(serial_updates, batched_updates)

    def test_dropout_uses_per_client_rng_streams(self):
        serial = _make_clients(4, 120, dropout=True)
        batched = _make_clients(4, 120, dropout=True)
        trainer = BatchTrainer(batched)
        base = serial[0].model.get_flat_params()
        for round_number in range(2):
            serial_updates = [c.local_train(base, round_number) for c in serial]
            batched_updates = trainer.train(
                [TrainRequest(u, base, round_number) for u in range(4)],
                include_params=True,
            )
            _assert_round_parity(serial_updates, batched_updates)

    def test_multiple_local_epochs(self):
        serial = _make_clients(3, 90, local_epochs=3)
        batched = _make_clients(3, 90, local_epochs=3)
        trainer = BatchTrainer(batched)
        base = serial[0].model.get_flat_params()
        serial_updates = [c.local_train(base, 0) for c in serial]
        batched_updates = trainer.train(
            [TrainRequest(u, base, 0) for u in range(3)], include_params=True
        )
        assert batched_updates[0].num_batches == serial_updates[0].num_batches
        _assert_round_parity(serial_updates, batched_updates)

    def test_block_splitting_beyond_cap(self):
        """Groups wider than _MAX_BLOCK_CLIENTS split without changing results."""
        count = BatchTrainer._MAX_BLOCK_CLIENTS + 7
        serial = _make_clients(count, count * 23)
        batched = _make_clients(count, count * 23)
        trainer = BatchTrainer(batched)
        base = serial[0].model.get_flat_params()
        serial_updates = [c.local_train(base, 0) for c in serial]
        batched_updates = trainer.train(
            [TrainRequest(u, base, 0) for u in range(count)], include_params=True
        )
        _assert_round_parity(serial_updates, batched_updates)

    def test_thread_fanout_is_deterministic(self):
        count = BatchTrainer._MAX_BLOCK_CLIENTS + 5
        sequential = _make_clients(count, count * 21)
        threaded = _make_clients(count, count * 21)
        base = sequential[0].model.get_flat_params()
        requests = [TrainRequest(u, base, 0) for u in range(count)]
        updates_seq = BatchTrainer(sequential, threads=1).train(requests, include_params=True)
        updates_thr = BatchTrainer(threaded, threads=2).train(requests, include_params=True)
        for a, b in zip(updates_seq, updates_thr):
            assert np.array_equal(a.params, b.params)
            assert a.train_loss == b.train_loss

    def test_rejects_mismatched_architectures(self):
        clients = _make_clients(2, 60)
        clients[1].model = build_mlp(input_dim=24, hidden_dims=(8,), seed=0)
        with pytest.raises(ValueError):
            BatchTrainer(clients)

    def test_rejects_duplicate_requests(self):
        clients = _make_clients(2, 60)
        trainer = BatchTrainer(clients)
        base = clients[0].model.get_flat_params()
        with pytest.raises(ValueError):
            trainer.train([TrainRequest(0, base, 0), TrainRequest(0, base, 0)])

    def test_rejects_wrong_base_shape(self):
        clients = _make_clients(2, 60)
        trainer = BatchTrainer(clients)
        with pytest.raises(ValueError):
            trainer.train([TrainRequest(0, np.zeros(3), 0)])


# ---------------------------------------------------------------------------
# Engine-level equivalence matrix
# ---------------------------------------------------------------------------


def _matrix_config(seed: int, dirichlet: bool) -> SimulationConfig:
    """Tiny but non-trivial: 7 users force ragged shards (500 / 7)."""
    return SimulationConfig(
        num_users=7,
        total_slots=420,
        app_arrival_prob=0.02,
        seed=seed,
        num_train_samples=500,
        num_test_samples=150,
        hidden_dims=(24,),
        eval_interval_slots=140,
        trace_interval_slots=10,
        non_iid_alpha=0.4 if dirichlet else None,
    )


def _matrix_policy(name: str):
    if name == "immediate":
        return ImmediatePolicy()
    if name == "sync":
        return SyncPolicy()
    if name == "offline":
        return OfflinePolicy(staleness_bound=1000.0, window_slots=120)
    return OnlinePolicy(v=4000.0, staleness_bound=500.0)


class TestEngineEquivalenceMatrix:
    """Serial vs batched engine runs: seeds x policies x partitions."""

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("dirichlet", [False, True])
    @pytest.mark.parametrize("policy_name", ["immediate", "sync", "offline", "online"])
    def test_batched_run_reproduces_serial_run(self, policy_name, dirichlet, seed):
        config = _matrix_config(seed, dirichlet)
        serial = SimulationEngine(
            config, _matrix_policy(policy_name), batched_training=False
        ).run()
        batched = SimulationEngine(
            config, _matrix_policy(policy_name), batched_training=True
        ).run()

        # Slot-for-slot decision traces and update ordering are identical.
        assert serial.trace.decisions == batched.trace.decisions
        assert serial.num_updates == batched.num_updates
        assert [u.user_id for u in serial.trace.update_samples] == [
            u.user_id for u in batched.trace.update_samples
        ]
        assert [u.lag for u in serial.trace.update_samples] == [
            u.lag for u in batched.trace.update_samples
        ]
        # Energy and queue traces: training does not influence Eq. (10), so
        # energy is bitwise; queues absorb float gap sums, so tight allclose.
        assert serial.total_energy_j() == batched.total_energy_j()
        assert np.allclose(
            serial.queue_history or [0.0], batched.queue_history or [0.0],
            rtol=RTOL, atol=ATOL,
        )
        assert np.allclose(
            serial.virtual_queue_history or [0.0],
            batched.virtual_queue_history or [0.0],
            rtol=RTOL, atol=ATOL,
        )
        # Model-side observables: losses, gaps and the accuracy curve.
        assert np.allclose(
            [u.train_loss for u in serial.trace.update_samples],
            [u.train_loss for u in batched.trace.update_samples],
            rtol=1e-8, atol=1e-10,
        )
        assert np.allclose(
            [u.gradient_gap for u in serial.trace.update_samples],
            [u.gradient_gap for u in batched.trace.update_samples],
            rtol=1e-8, atol=1e-10,
        )
        assert serial.accuracy.times() == batched.accuracy.times()
        assert np.allclose(
            serial.accuracy.accuracies(), batched.accuracy.accuracies(),
            rtol=1e-8, atol=1e-10,
        )

    def test_train_ahead_only_runs_ahead(self):
        """Batched clients may pre-run rounds whose completion falls past the
        horizon; everything observable matches (previous test), and the
        round counters can only ever be ahead of the serial engine's."""
        config = _matrix_config(seed=2, dirichlet=False)
        serial_engine = SimulationEngine(config, ImmediatePolicy(), batched_training=False)
        batched_engine = SimulationEngine(config, ImmediatePolicy(), batched_training=True)
        serial_engine.run()
        batched_engine.run()
        for cs, cb in zip(serial_engine.clients, batched_engine.clients):
            assert cb.rounds_completed >= cs.rounds_completed


# ---------------------------------------------------------------------------
# Zero-copy parameter plumbing
# ---------------------------------------------------------------------------


class TestUploadPayloadAndZeroCopy:
    def test_delta_only_upload_halves_payload(self):
        clients = _make_clients(1, 60)
        base = clients[0].model.get_flat_params()
        full = clients[0].local_train(base, 0, include_params=True)
        lean = clients[0].local_train(base, 1, include_params=False)
        assert lean.params is None
        assert lean.payload_nbytes() == lean.delta.nbytes
        assert full.payload_nbytes() == 2 * lean.payload_nbytes()

    def test_engine_ships_delta_only_under_accumulate(self):
        config = _matrix_config(seed=0, dirichlet=False)
        engine = SimulationEngine(config, ImmediatePolicy())
        assert config.async_rule is AsyncUpdateRule.ACCUMULATE
        assert engine._upload_params is False

    def test_engine_ships_params_for_replace_rules(self):
        config = _matrix_config(seed=0, dirichlet=False).scaled(
            async_rule=AsyncUpdateRule.STALENESS_WEIGHTED, total_slots=250
        )
        for batched in (False, True):
            result = SimulationEngine(
                config, ImmediatePolicy(), batched_training=batched
            ).run()
            assert result.num_updates > 0

    def test_server_rejects_delta_only_for_replace_rule(self):
        from repro.fl.client import LocalUpdate

        server = ParameterServer(np.zeros(4), async_rule=AsyncUpdateRule.REPLACE)
        update = LocalUpdate(
            user_id=0, delta=np.ones(4), base_version=0, num_samples=5,
            train_loss=1.0, momentum_norm=0.0, num_batches=1,
        )
        with pytest.raises(ValueError, match="include_params"):
            server.async_update(update, time_s=0.0)

    def test_sync_round_reconstructs_from_deltas(self):
        from repro.fl.client import LocalUpdate

        server = ParameterServer(np.full(2, 1.0))
        updates = [
            LocalUpdate(0, delta=np.full(2, 1.0), base_version=0, num_samples=30,
                        train_loss=1.0, momentum_norm=0.0, num_batches=1),
            LocalUpdate(1, delta=np.full(2, 7.0), base_version=0, num_samples=10,
                        train_loss=1.0, momentum_norm=0.0, num_batches=1),
        ]
        server.sync_round(updates, time_s=0.0)
        # Weighted average of (1+1, 1+7) with weights (0.75, 0.25).
        assert np.allclose(server.global_params(), 0.75 * 2.0 + 0.25 * 8.0)

    def test_sync_round_rejects_stale_delta_only_uploads(self):
        """Reconstruction assumes participants trained from the current
        global model; a stale delta-only upload must fail loudly instead of
        silently averaging a wrong absolute vector."""
        from repro.fl.client import LocalUpdate

        server = ParameterServer(np.zeros(2))
        server.async_update(
            LocalUpdate(0, delta=np.ones(2), base_version=0, num_samples=1,
                        train_loss=0.0, momentum_norm=0.0, num_batches=1),
            time_s=0.0,
        )
        stale = LocalUpdate(1, delta=np.ones(2), base_version=0, num_samples=1,
                            train_loss=0.0, momentum_norm=0.0, num_batches=1)
        with pytest.raises(ValueError, match="include_params"):
            server.sync_round([stale], time_s=1.0)

    def test_global_params_is_read_only_view(self):
        server = ParameterServer(np.arange(4.0))
        view = server.global_params()
        assert not view.flags.writeable
        assert np.shares_memory(view, server._params)
        with pytest.raises(ValueError):
            view[0] = 99.0
        # Updates rebind instead of mutating: an old download stays a valid
        # snapshot of the model at download time.
        from repro.fl.client import LocalUpdate

        snapshot = server.download(0)
        server.async_update(
            LocalUpdate(0, delta=np.ones(4), base_version=0, num_samples=1,
                        train_loss=0.0, momentum_norm=0.0, num_batches=1),
            time_s=0.0,
        )
        assert np.array_equal(snapshot, np.arange(4.0))
        assert np.array_equal(server.global_params(), np.arange(4.0) + 1.0)


# ---------------------------------------------------------------------------
# Engine timers
# ---------------------------------------------------------------------------


class TestEngineTimers:
    def test_profile_reports_shares(self):
        config = _matrix_config(seed=0, dirichlet=False).scaled(total_slots=200)
        result = SimulationEngine(config, ImmediatePolicy(), profile=True).run()
        shares = result.timing_shares()
        assert shares is not None
        assert set(shares) == {
            "training", "policy", "eval", "ipc_send", "ipc_recv", "merge", "slot_loop"
        }
        assert sum(shares.values()) == pytest.approx(1.0)
        # Single-process runs never touch the shard IPC buckets.
        assert shares["ipc_send"] == 0.0 and shares["ipc_recv"] == 0.0
        assert result.timers.report().startswith("wall-clock profile")

    def test_profiling_off_by_default(self):
        config = _matrix_config(seed=0, dirichlet=False).scaled(total_slots=120)
        result = SimulationEngine(config, ImmediatePolicy()).run()
        assert result.timers is None
        assert result.timing_shares() is None

    def test_profiling_does_not_change_results(self):
        config = _matrix_config(seed=1, dirichlet=False).scaled(total_slots=200)
        plain = SimulationEngine(config, ImmediatePolicy()).run()
        profiled = SimulationEngine(config, ImmediatePolicy(), profile=True).run()
        assert plain.total_energy_j() == profiled.total_energy_j()
        assert plain.num_updates == profiled.num_updates
        assert plain.accuracy.accuracies() == profiled.accuracy.accuracies()
