"""Integration tests for the JobScheduler battery-participation condition.

Section III.B / VI of the paper: a device only pulls the model and trains
"depending on the network condition or battery energy"; the Android
JobScheduler exposes charge-level conditions.  These tests exercise the
optional battery gating of the simulation engine.
"""

import pytest

from repro.core.policies import ImmediatePolicy
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine


def _config(**overrides):
    base = dict(
        num_users=4,
        total_slots=600,
        app_arrival_prob=0.0,
        seed=5,
        num_train_samples=400,
        num_test_samples=200,
        eval_interval_slots=300,
        device_names=["pixel2", "nexus6p", "nexus6", "pixel2"],
        class_separation=2.5,
        clusters_per_class=1,
        label_noise=0.0,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestBatteryGating:
    def test_batteries_disabled_by_default(self):
        result = SimulationEngine(_config(), ImmediatePolicy()).run()
        assert result.final_battery_soc == []
        assert result.mean_final_battery_soc() == 1.0

    def test_batteries_drain_during_training(self):
        config = _config(battery_capacity_j=200_000.0)
        result = SimulationEngine(config, ImmediatePolicy()).run()
        assert result.final_battery_soc
        assert all(0.0 <= soc < 1.0 for soc in result.final_battery_soc)

    def test_low_battery_blocks_participation(self):
        """With tiny batteries the devices stop training once below threshold."""
        unlimited = SimulationEngine(_config(), ImmediatePolicy()).run()
        gated = SimulationEngine(
            _config(battery_capacity_j=1_200.0, min_battery_soc=0.75), ImmediatePolicy()
        ).run()
        assert gated.num_updates < unlimited.num_updates
        # Batteries ended near (or below) the participation threshold.
        assert all(soc <= 0.85 for soc in gated.final_battery_soc)

    def test_gated_run_consumes_less_energy(self):
        unlimited = SimulationEngine(_config(), ImmediatePolicy()).run()
        gated = SimulationEngine(
            _config(battery_capacity_j=1_200.0, min_battery_soc=0.75), ImmediatePolicy()
        ).run()
        assert gated.total_energy_j() < unlimited.total_energy_j()

    def test_charging_restores_participation(self):
        """A charged device keeps contributing more updates than a draining one."""
        draining = SimulationEngine(
            _config(battery_capacity_j=3_000.0, min_battery_soc=0.5), ImmediatePolicy()
        ).run()
        charging = SimulationEngine(
            _config(battery_capacity_j=3_000.0, min_battery_soc=0.5,
                    battery_charge_rate_w=25.0),
            ImmediatePolicy(),
        ).run()
        assert charging.num_updates >= draining.num_updates

    def test_dev_board_is_never_gated(self):
        """The bench-powered HiKey970 ignores the battery condition."""
        config = _config(
            device_names=["hikey970", "hikey970", "hikey970", "hikey970"],
            battery_capacity_j=1_000.0,
            min_battery_soc=0.9,
        )
        result = SimulationEngine(config, ImmediatePolicy()).run()
        assert result.num_updates > 0
        assert result.final_battery_soc == []

    def test_invalid_battery_configuration(self):
        with pytest.raises(ValueError):
            _config(battery_capacity_j=0.0)
        with pytest.raises(ValueError):
            _config(min_battery_soc=1.5)
        with pytest.raises(ValueError):
            _config(battery_charge_rate_w=-1.0)
