"""Tests for the battery model and the software power profiler."""

import pytest

from repro.energy.battery import Battery
from repro.energy.profiler import PowerProfiler


class TestBattery:
    def test_initial_state(self):
        battery = Battery()
        assert battery.soc == pytest.approx(1.0)
        assert battery.can_participate()
        assert not battery.depleted

    def test_discharge_reduces_soc(self):
        battery = Battery(capacity_j=1000.0, charge_j=1000.0)
        drawn = battery.discharge(250.0)
        assert drawn == pytest.approx(250.0)
        assert battery.soc == pytest.approx(0.75)

    def test_discharge_clamps_at_empty(self):
        battery = Battery(capacity_j=100.0, charge_j=30.0)
        drawn = battery.discharge(50.0)
        assert drawn == pytest.approx(30.0)
        assert battery.depleted

    def test_participation_threshold(self):
        battery = Battery(capacity_j=100.0, charge_j=15.0, min_participation_soc=0.2)
        assert not battery.can_participate()
        battery.charge(duration_s=1.0)  # +10 J at default 10 W
        assert battery.can_participate()

    def test_charge_clamps_at_capacity(self):
        battery = Battery(capacity_j=100.0, charge_j=95.0, charge_rate_w=10.0)
        added = battery.charge(duration_s=10.0)
        assert added == pytest.approx(5.0)
        assert battery.soc == pytest.approx(1.0)

    def test_equivalent_full_cycles(self):
        battery = Battery(capacity_j=100.0, charge_j=100.0)
        battery.discharge(100.0)
        battery.charge(duration_s=10.0)
        battery.discharge(50.0)
        assert battery.equivalent_full_cycles() == pytest.approx(1.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Battery(capacity_j=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_j=10.0, charge_j=20.0)
        with pytest.raises(ValueError):
            Battery(min_participation_soc=2.0)

    def test_negative_operations_rejected(self):
        battery = Battery()
        with pytest.raises(ValueError):
            battery.discharge(-1.0)
        with pytest.raises(ValueError):
            battery.charge(-1.0)


class TestPowerProfiler:
    def test_schedule_energies_match_table(self, table):
        profiler = PowerProfiler(table=table, noise_std_w=0.0, seed=0)
        comparison = profiler.profile_schedules("pixel2", "map")
        assert comparison.training_separate.energy_j == pytest.approx(
            table.training_power("pixel2") * table.training_time("pixel2"), rel=1e-6
        )
        assert comparison.corunning.energy_j == pytest.approx(
            table.corun_power("pixel2", "map") * table.corun_time("pixel2", "map"), rel=1e-6
        )

    def test_saving_matches_table_derivation(self, table):
        profiler = PowerProfiler(table=table, noise_std_w=0.0)
        comparison = profiler.profile_schedules("hikey970", "etrade")
        assert comparison.saving_fraction() == pytest.approx(
            table.energy_saving("hikey970", "etrade"), abs=1e-6
        )

    def test_noise_perturbs_but_preserves_mean(self, table):
        profiler = PowerProfiler(table=table, noise_std_w=0.05, seed=1)
        comparison = profiler.profile_schedules("pixel2", "zoom")
        mean = comparison.corunning.mean_power_w
        assert mean == pytest.approx(table.corun_power("pixel2", "zoom"), rel=0.05)

    def test_profile_device_covers_all_apps(self, table):
        profiler = PowerProfiler(table=table)
        comparisons = profiler.profile_device("nexus6p")
        assert {c.app for c in comparisons} == set(table.apps("nexus6p"))

    def test_analytical_source_produces_positive_saving_on_big_little(self):
        profiler = PowerProfiler(source="analytical", noise_std_w=0.0)
        comparison = profiler.profile_schedules("pixel2", "news")
        assert comparison.saving_fraction() > 0.0

    def test_unknown_app_rejected(self, table):
        profiler = PowerProfiler(table=table)
        with pytest.raises(KeyError):
            profiler.profile_schedules("pixel2", "fortnite")

    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError):
            PowerProfiler(source="oracle")

    def test_traces_have_requested_length(self, table):
        profiler = PowerProfiler(table=table)
        assert len(profiler.idle_power_trace("pixel2", 30)) == 30
        assert len(profiler.decision_power_trace("pixel2", 15)) == 15
        with pytest.raises(ValueError):
            profiler.idle_power_trace("pixel2", 0)
