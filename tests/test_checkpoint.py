"""Checkpoint/resume round-trips: every backend, bitwise, at awkward moments.

The contract under test (see ``src/repro/service/checkpoint.py``): a run
interrupted at any slot boundary and restored from its checkpoint finishes
with results bitwise-identical to the uninterrupted run — same energy
folds, same accuracy samples, same queue histories, same trace — for the
loop backend, the fleet backend with and without event-horizon
fast-forward, batched training with train-ahead flights, and the sharded
engine (including restoring under a different shard count).
"""

import tempfile

import pytest

from repro.core.online import OnlinePolicy
from repro.core.policies import SyncPolicy
from repro.service.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
    Checkpointer,
    RunInterrupted,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.shard import ShardedEngine


def make_config(**overrides) -> SimulationConfig:
    base = dict(
        num_users=5,
        total_slots=300,
        app_arrival_prob=0.01,
        seed=7,
        num_train_samples=400,
        num_test_samples=200,
        hidden_dims=(8,),
        eval_interval_slots=100,
        trace_interval_slots=10,
        class_separation=2.5,
        clusters_per_class=1,
        label_noise=0.0,
        learning_rate=0.05,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def make_policy(name: str):
    if name == "sync":
        return SyncPolicy()
    return OnlinePolicy(v=4000.0, staleness_bound=500.0, epsilon=0.01, distributed=True)


def digest(result) -> dict:
    """Every observable output that must survive a resume bitwise."""
    return dict(
        energy=result.total_energy_j(),
        updates=result.num_updates,
        accuracy=[(s.time_s, s.accuracy, s.loss) for s in result.accuracy.samples],
        queue=list(result.queue_history),
        virtual_queue=list(result.virtual_queue_history),
        slots=[
            (s.slot, s.cumulative_energy_j, s.queue_length,
             s.virtual_queue_length, s.gap_sum)
            for s in result.trace.slot_samples
        ],
        comm=(result.comm_bytes_mb, result.comm_failures),
        soc=list(result.final_battery_soc),
    )


def interrupt_at(engine, at_slot: int):
    """Run until the checkpoint at ``at_slot`` lands, return that checkpoint."""
    taken = []
    checkpointer = Checkpointer(
        lambda cp: (taken.append(cp), checkpointer.request_stop()),
        at_slots=[at_slot],
    )
    with pytest.raises(RunInterrupted):
        engine.run(checkpointer)
    assert len(taken) == 1
    assert taken[0].slot == at_slot
    return taken[0]


def assert_same(reference: dict, resumed: dict, label: str) -> None:
    for key in reference:
        assert reference[key] == resumed[key], f"{label}: diverged on {key}"


# The interrupt points are chosen to land in qualitatively different run
# states: slot 37 interrupts the opening training flight (under batched
# training the train-ahead scheduler has work in flight), slot 137 falls
# inside a long quiet region (the fast-forward kernel must split it
# exactly at the boundary), and under the sync policy a mid-run slot sits
# inside an open synchronous round with partial uploads buffered.
CASES = [
    pytest.param("loop", False, False, "online", 137, id="loop-mid-quiet"),
    pytest.param("loop", False, False, "online", 37, id="loop-mid-flight"),
    pytest.param("fleet", False, False, "online", 137, id="fleet-mid-quiet"),
    pytest.param("fleet", True, False, "online", 137, id="fleet-ff-mid-quiet"),
    pytest.param("fleet", True, False, "online", 37, id="fleet-ff-mid-flight"),
    pytest.param("fleet", True, False, "sync", 151, id="fleet-ff-mid-sync-round"),
    pytest.param("loop", False, False, "sync", 151, id="loop-mid-sync-round"),
    pytest.param(
        "fleet", True, True, "online", 37, id="fleet-ff-batched-mid-flight"
    ),
]


class TestSingleEngineRoundTrip:
    @pytest.mark.parametrize("backend,ff,batched,policy,at_slot", CASES)
    def test_resume_is_bitwise_identical(self, backend, ff, batched, policy, at_slot):
        config = make_config()
        reference = digest(
            SimulationEngine(
                config, make_policy(policy), backend=backend,
                fast_forward=ff, batched_training=batched,
            ).run()
        )
        checkpoint = interrupt_at(
            SimulationEngine(
                config, make_policy(policy), backend=backend,
                fast_forward=ff, batched_training=batched,
            ),
            at_slot,
        )
        resumed = digest(SimulationEngine.restore(checkpoint).run())
        assert_same(reference, resumed, f"{backend}/ff={ff}/batched={batched}")

    def test_checkpoint_is_restorable_twice(self):
        """One in-memory checkpoint feeds two restores without aliasing."""
        config = make_config()
        reference = digest(
            SimulationEngine(config, make_policy("online"), backend="fleet").run()
        )
        checkpoint = interrupt_at(
            SimulationEngine(config, make_policy("online"), backend="fleet"), 137
        )
        first = digest(SimulationEngine.restore(checkpoint).run())
        second = digest(SimulationEngine.restore(checkpoint).run())
        assert_same(reference, first, "first restore")
        assert_same(reference, second, "second restore")

    def test_periodic_checkpoints_do_not_perturb_the_run(self):
        """A run that checkpoints every N slots (no interrupt) is unchanged."""
        config = make_config()
        reference = digest(
            SimulationEngine(config, make_policy("online"), backend="fleet").run()
        )
        taken = []
        checkpointer = Checkpointer(taken.append, every_slots=50)
        observed = digest(
            SimulationEngine(config, make_policy("online"), backend="fleet").run(
                checkpointer
            )
        )
        assert_same(reference, observed, "checkpointing run")
        assert [cp.slot for cp in taken] == list(range(50, config.total_slots, 50))

    def test_loop_snapshot_after_interrupt_matches_the_checkpoint(self):
        """`snapshot()` on an interrupted engine re-captures the same state."""
        config = make_config()
        reference = digest(
            SimulationEngine(config, make_policy("online"), backend="loop").run()
        )
        engine = SimulationEngine(config, make_policy("online"), backend="loop")
        taken = interrupt_at(engine, 137)
        snapshot = engine.snapshot()
        assert snapshot.slot == taken.slot == 137
        assert snapshot.pending_arrivals == taken.pending_arrivals
        resumed = digest(SimulationEngine.restore(snapshot).run())
        assert_same(reference, resumed, "post-interrupt snapshot")

    def test_fleet_snapshot_directs_to_checkpointer(self):
        engine = SimulationEngine(
            make_config(), make_policy("online"), backend="fleet"
        )
        with pytest.raises(RuntimeError, match="Checkpointer"):
            engine.snapshot()


class TestShardedRoundTrip:
    @pytest.fixture(scope="class")
    def reference(self):
        config = make_config()
        return digest(
            SimulationEngine(
                config, make_policy("online"), backend="fleet", fast_forward=True
            ).run()
        )

    @pytest.fixture(scope="class")
    def checkpoint(self):
        return interrupt_at(
            ShardedEngine(make_config(), make_policy("online"), shards=2, inline=True),
            137,
        )

    @pytest.mark.parametrize("shards", [2, 3, 1])
    def test_restore_under_any_shard_count(self, reference, checkpoint, shards):
        resumed = digest(
            ShardedEngine.restore(checkpoint, shards=shards, inline=True).run()
        )
        assert_same(reference, resumed, f"2-shard checkpoint -> {shards} shards")

    def test_real_process_shards_roundtrip(self, reference):
        """The same contract with actual worker processes, not inline handles."""
        checkpoint = interrupt_at(
            ShardedEngine(make_config(), make_policy("online"), shards=2), 137
        )
        resumed = digest(ShardedEngine.restore(checkpoint, shards=2).run())
        assert_same(reference, resumed, "process shards")

    def test_reslice_preserves_compacted_dtypes(self, checkpoint):
        """Re-sharding a checkpoint keeps the int32 slot/version counters.

        ``reslice`` concatenates the per-slice arrays and cuts them at the
        new bounds; numpy preserves dtype through both, so a widening here
        would mean someone round-tripped through Python lists or float64.
        """
        import numpy as np

        from repro.service.checkpoint import reslice

        for shards, bounds in ((3, [(0, 2), (2, 4), (4, 5)]), (1, [(0, 5)])):
            slices = reslice(checkpoint.slices, bounds)
            assert len(slices) == shards
            for state in slices:
                fleet = state["fleet"]
                for key in ("waiting_slots", "base_version", "app_end_slot"):
                    assert fleet[key].dtype == np.int32, (shards, key)

    def test_widened_checkpoint_restores_bitwise(self, reference, checkpoint):
        """Checkpoints written before the int32 compaction still restore.

        A pre-compaction snapshot carries the same counters as int64;
        ``FleetState.load_state_dict`` coerces them back down (the values
        are bounded far below 2**31, so the cast is lossless) and the
        resumed run must stay bitwise-identical to the reference.
        """
        import copy

        import numpy as np

        widened = copy.deepcopy(checkpoint)
        for state in widened.slices:
            fleet = state["fleet"]
            for key in ("waiting_slots", "base_version", "app_end_slot"):
                fleet[key] = fleet[key].astype(np.int64)

        engine = ShardedEngine.restore(widened, shards=3, inline=True)

        # The coercion itself, observed directly on one restored shard.
        from repro.service.checkpoint import reslice
        from repro.sim.shard import FleetShard

        lo, hi = engine.bounds[0]
        shard = FleetShard.build(
            config=engine.config,
            lo=lo,
            hi=hi,
            arrivals=engine.arrivals.slice_users(lo, hi),
            measurement_table=engine.table,
            batched_training=engine.batched_training,
            training_threads=1,
        )
        shard.restore_state(reslice(widened.slices, engine.bounds)[0])
        for key in ("waiting_slots", "base_version", "app_end_slot"):
            assert getattr(shard.fleet, key).dtype == np.int32, key

        resumed = digest(engine.run())
        assert_same(reference, resumed, "widened (pre-compaction) checkpoint")


class TestCheckpointStore:
    def test_disk_round_trip_preserves_the_contract(self):
        config = make_config()
        reference = digest(
            SimulationEngine(config, make_policy("online"), backend="fleet").run()
        )
        checkpoint = interrupt_at(
            ShardedEngine(config, make_policy("online"), shards=2, inline=True), 137
        )
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp)
            assert not store.exists()
            store.save(checkpoint)
            assert store.exists()
            loaded = store.load()
            assert loaded.slot == checkpoint.slot
            assert loaded.backend == "fleet"
            assert [s["lo"] for s in loaded.slices] == [0, 3]  # 5 users, 2 shards
            resumed = digest(
                ShardedEngine.restore(loaded, shards=3, inline=True).run()
            )
        assert_same(reference, resumed, "disk round trip")

    def test_crash_mid_save_keeps_previous_snapshot(self, monkeypatch):
        """A save that dies partway never corrupts the last complete one."""
        import pickle as _pickle

        config = make_config()
        first = interrupt_at(
            SimulationEngine(config, make_policy("online"), backend="loop"), 37
        )
        second = interrupt_at(
            SimulationEngine(config, make_policy("online"), backend="loop"), 137
        )
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp)
            store.save(first)

            real_dump = _pickle.dump

            def dying_dump(obj, handle, **kwargs):
                handle.write(b"partial")  # truncated garbage, then the "kill"
                raise OSError("simulated crash mid-save")

            monkeypatch.setattr(_pickle, "dump", dying_dump)
            with pytest.raises(OSError):
                store.save(second)
            monkeypatch.setattr(_pickle, "dump", real_dump)

            # The manifest still points at the first, fully-written snapshot.
            assert store.exists()
            loaded = store.load()
            assert loaded.slot == 37

            # The next save succeeds and prunes the partial leftovers.
            store.save(second)
            assert store.load().slot == 137
            snapshots = [
                p for p in store.root.iterdir()
                if p.is_dir() and p.name.startswith(store.SNAPSHOT_PREFIX)
            ]
            assert len(snapshots) == 1

    def test_resave_prunes_superseded_snapshots(self):
        config = make_config()
        first = interrupt_at(
            SimulationEngine(config, make_policy("online"), backend="loop"), 37
        )
        second = interrupt_at(
            SimulationEngine(config, make_policy("online"), backend="loop"), 137
        )
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp)
            store.save(first)
            store.save(second)
            assert store.load().slot == 137
            snapshots = [
                p for p in store.root.iterdir()
                if p.is_dir() and p.name.startswith(store.SNAPSHOT_PREFIX)
            ]
            assert len(snapshots) == 1

    def test_unknown_format_version_is_rejected(self):
        config = make_config()
        checkpoint = interrupt_at(
            SimulationEngine(config, make_policy("online"), backend="loop"), 37
        )
        checkpoint.format_version = CHECKPOINT_FORMAT_VERSION + 1
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(tmp)
            store.save(checkpoint)
            with pytest.raises(ValueError, match="unsupported"):
                store.load()
