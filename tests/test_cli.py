"""Tests for the ``repro-sim`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["table2"]).command == "table2"
        assert parser.parse_args(["table3"]).command == "table3"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.policy == "online"
        assert args.v == 4000.0
        assert args.staleness_bound == 500.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "greedy"])


class TestStaticCommands:
    def test_table2_output(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Table II" in output
        assert "pixel2" in output and "candycrush" in output

    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        output = capsys.readouterr().out
        assert "Overhead %" in output
        assert "nexus6" in output

    def test_fig1_output(self, capsys):
        assert main(["fig1", "--devices", "pixel2"]) == 0
        output = capsys.readouterr().out
        assert "co-running (J)" in output
        assert output.count("pixel2") >= 8

    def test_fig2_output(self, capsys):
        assert main(["fig2", "--apps", "tiktok", "--duration", "50"]) == 0
        output = capsys.readouterr().out
        assert "tiktok" in output and "degradation %" in output


class TestSimulationCommands:
    COMMON = ["--users", "4", "--slots", "250", "--arrival-prob", "0.01", "--seed", "1"]

    def test_simulate_online(self, capsys):
        assert main(["simulate", "--policy", "online", *self.COMMON]) == 0
        output = capsys.readouterr().out
        assert "Simulation summary" in output
        assert "energy (kJ)" in output

    def test_simulate_immediate_with_plot(self, capsys):
        assert main(["simulate", "--policy", "immediate", "--plot", *self.COMMON]) == 0
        output = capsys.readouterr().out
        assert "test accuracy vs time" in output

    def test_sweep(self, capsys):
        assert main(["sweep", *self.COMMON, "--v-values", "0", "100000"]) == 0
        output = capsys.readouterr().out
        assert "V sweep" in output
        assert "saving vs immediate %" in output

    def test_compare(self, capsys):
        assert main(["compare", *self.COMMON]) == 0
        output = capsys.readouterr().out
        assert "Policy comparison" in output
        for name in ("immediate", "sync", "offline", "online"):
            assert name in output
