"""Tests for the simulated network and model transport."""

import numpy as np
import pytest

from repro.comm.messages import ModelDownload, ModelUpload
from repro.comm.network import DEFAULT_PROFILES, NetworkCondition, NetworkModel, NetworkType
from repro.comm.transport import ModelTransport


class TestNetworkModel:
    def test_assignment_is_sticky(self):
        model = NetworkModel(rng=np.random.default_rng(0), wifi_probability=0.5)
        first = model.assign(7)
        assert all(model.assign(7) == first for _ in range(10))

    def test_wifi_probability_extremes(self):
        all_wifi = NetworkModel(rng=np.random.default_rng(0), wifi_probability=1.0)
        all_lte = NetworkModel(rng=np.random.default_rng(0), wifi_probability=0.0)
        assert all(all_wifi.assign(u) is NetworkType.WIFI for u in range(20))
        assert all(all_lte.assign(u) is NetworkType.LTE for u in range(20))

    def test_condition_jitters_bandwidth(self):
        model = NetworkModel(rng=np.random.default_rng(1), wifi_probability=1.0)
        conditions = [model.condition(0) for _ in range(20)]
        uplinks = {round(c.uplink_mbps, 3) for c in conditions}
        assert len(uplinks) > 1
        assert all(c.uplink_mbps > 0 for c in conditions)

    def test_offline_probability(self):
        model = NetworkModel(
            rng=np.random.default_rng(2), wifi_probability=1.0, offline_probability=0.99
        )
        conditions = [model.condition(0) for _ in range(50)]
        assert any(not c.connected for c in conditions)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            NetworkModel(wifi_probability=1.5)
        with pytest.raises(ValueError):
            NetworkModel(offline_probability=1.0)

    def test_profiles_have_sane_ordering(self):
        wifi = DEFAULT_PROFILES[NetworkType.WIFI]
        lte = DEFAULT_PROFILES[NetworkType.LTE]
        assert wifi.uplink_mbps > lte.uplink_mbps
        assert wifi.rtt_ms < lte.rtt_ms
        assert not DEFAULT_PROFILES[NetworkType.OFFLINE].connected


class TestModelTransport:
    def _transport(self, **kwargs):
        network = NetworkModel(rng=np.random.default_rng(0), wifi_probability=1.0, **kwargs)
        return ModelTransport(network)

    def test_transfer_duration_formula(self):
        # 2.5 MB over 20 Mbps plus a 100 ms RTT = 1 s + 0.1 s.
        duration = ModelTransport.transfer_duration_s(2.5, 20.0, 100.0)
        assert duration == pytest.approx(1.1)
        with pytest.raises(ValueError):
            ModelTransport.transfer_duration_s(2.5, 0.0, 10.0)

    def test_upload_and_download_record(self):
        transport = self._transport()
        upload = transport.upload(ModelUpload(user_id=1, round_number=0, base_version=0), time_s=5.0)
        download = transport.download(ModelDownload(user_id=1, server_version=3), time_s=9.0)
        assert upload.succeeded and download.succeeded
        assert upload.direction == "upload"
        assert download.direction == "download"
        assert upload.end_time_s() > 5.0
        assert transport.total_bytes_mb() == pytest.approx(5.0)
        assert transport.failure_count() == 0
        assert transport.mean_duration_s() > 0.0

    def test_sub_slot_transfers_on_wifi(self):
        """With the paper's 2.5 MB model and Wi-Fi rates, transfers fit in a slot."""
        transport = self._transport()
        record = transport.upload(ModelUpload(user_id=0, round_number=0, base_version=0), 0.0)
        assert record.duration_s < 1.5

    def test_offline_transfer_fails(self):
        network = NetworkModel(
            rng=np.random.default_rng(0), wifi_probability=1.0, offline_probability=0.999999
        )
        transport = ModelTransport(network)
        record = transport.upload(ModelUpload(user_id=0, round_number=0, base_version=0), 0.0)
        assert not record.succeeded
        assert record.failure_reason == "offline"
        assert transport.failure_count() == 1

    def test_radio_energy_accounting(self):
        network = NetworkModel(rng=np.random.default_rng(0), wifi_probability=1.0)
        transport = ModelTransport(network, account_radio_energy=True)
        transport.upload(ModelUpload(user_id=0, round_number=0, base_version=0), 0.0)
        assert transport.radio_energy_j > 0.0

    def test_invalid_model_size(self):
        network = NetworkModel(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            ModelTransport(network, model_size_mb=0.0)

    def test_mean_duration_empty(self):
        transport = self._transport()
        assert transport.mean_duration_s() == 0.0
