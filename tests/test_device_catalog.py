"""Tests for the device catalog, application catalog and CPU model."""

import numpy as np
import pytest

from repro.device.apps import APP_CATALOG, AppIntensity, ForegroundApp, sample_app
from repro.device.cpu import (
    BigLittleCpu,
    CpuLoad,
    INTENSIVE_APP_LOAD,
    LIGHT_APP_LOAD,
    TRAINING_LOAD,
    load_for_intensity,
)
from repro.device.models import DEVICE_CATALOG, build_device_fleet, require_device


class TestDeviceCatalog:
    def test_four_testbed_devices(self):
        assert set(DEVICE_CATALOG) == {"nexus6", "nexus6p", "hikey970", "pixel2"}

    def test_nexus6_is_homogeneous(self):
        spec = DEVICE_CATALOG["nexus6"]
        assert not spec.heterogeneous
        assert spec.big_cores == 0

    def test_big_little_devices_have_both_clusters(self):
        for name in ("nexus6p", "hikey970", "pixel2"):
            spec = DEVICE_CATALOG[name]
            assert spec.heterogeneous
            assert spec.big_cores > 0 and spec.little_cores > 0

    def test_background_cpuset_matches_paper(self):
        """Pixel2 exposes two little cores to background services; the others one."""
        assert DEVICE_CATALOG["pixel2"].background_cpus == 2
        assert DEVICE_CATALOG["nexus6p"].background_cpus == 1
        assert DEVICE_CATALOG["hikey970"].background_cpus == 1

    def test_power_fields_match_measurements(self, table):
        for name, spec in DEVICE_CATALOG.items():
            assert spec.training_power_w == table.training_power(name)
            assert spec.training_time_s == table.training_time(name)
            assert spec.idle_power_w == table.idle_power(name)

    def test_dev_board_flag(self):
        assert DEVICE_CATALOG["hikey970"].is_dev_board()
        assert not DEVICE_CATALOG["pixel2"].is_dev_board()

    def test_require_device_unknown(self):
        with pytest.raises(KeyError):
            require_device("galaxy")


class TestFleetBuilding:
    def test_uniform_fleet_size(self, rng):
        fleet = build_device_fleet(40, rng)
        assert len(fleet) == 40
        assert {spec.name for spec in fleet} <= set(DEVICE_CATALOG)

    def test_explicit_names(self, rng):
        fleet = build_device_fleet(3, rng, names=["pixel2", "pixel2", "nexus6"])
        assert [s.name for s in fleet] == ["pixel2", "pixel2", "nexus6"]

    def test_explicit_names_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            build_device_fleet(2, rng, names=["pixel2"])

    def test_mix_is_respected(self, rng):
        fleet = build_device_fleet(200, rng, mix={"pixel2": 1.0})
        assert all(spec.name == "pixel2" for spec in fleet)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            build_device_fleet(0, rng)
        with pytest.raises(KeyError):
            build_device_fleet(5, rng, mix={"iphone": 1.0})
        with pytest.raises(ValueError):
            build_device_fleet(5, rng, mix={"pixel2": 0.0})

    def test_fleet_is_deterministic_per_seed(self):
        fleet_a = build_device_fleet(30, np.random.default_rng(5))
        fleet_b = build_device_fleet(30, np.random.default_rng(5))
        assert [s.name for s in fleet_a] == [s.name for s in fleet_b]


class TestAppCatalog:
    def test_eight_apps(self):
        assert len(APP_CATALOG) == 8

    def test_games_are_intensive(self):
        assert APP_CATALOG["candycrush"].intensity is AppIntensity.INTENSIVE
        assert APP_CATALOG["angrybird"].intensity is AppIntensity.INTENSIVE

    def test_light_apps_do_not_slow_training(self):
        assert APP_CATALOG["news"].training_slowdown == pytest.approx(1.0)
        assert APP_CATALOG["etrade"].training_slowdown == pytest.approx(1.0)

    def test_intensive_apps_slow_training_10_to_15_percent(self):
        """Observation 2: gaming apps slow training by about 10-15%."""
        for name in ("candycrush", "angrybird"):
            assert 1.10 <= APP_CATALOG[name].training_slowdown <= 1.15

    def test_video_apps_run_at_30fps(self):
        assert APP_CATALOG["tiktok"].nominal_fps == pytest.approx(30.0)
        assert APP_CATALOG["youtube"].nominal_fps == pytest.approx(30.0)

    def test_foreground_app_lifetime(self):
        app = ForegroundApp(spec=APP_CATALOG["zoom"], arrival_slot=10, duration_slots=5)
        assert app.is_running(10) and app.is_running(14)
        assert not app.is_running(9) and not app.is_running(15)
        assert app.end_slot() == 15

    def test_sample_app_uniform(self, rng):
        names = {sample_app(rng).name for _ in range(200)}
        assert names == set(APP_CATALOG)

    def test_sample_app_weighted(self, rng):
        spec = sample_app(rng, names=["zoom", "news"], weights=[1.0, 0.0])
        assert spec.name == "zoom"

    def test_sample_app_invalid(self, rng):
        with pytest.raises(KeyError):
            sample_app(rng, names=["fortnite"])
        with pytest.raises(ValueError):
            sample_app(rng, names=["zoom"], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            sample_app(rng, names=["zoom", "news"], weights=[0.0, 0.0])


class TestBigLittleCpu:
    def test_power_increases_with_utilization(self):
        cpu = BigLittleCpu(DEVICE_CATALOG["pixel2"])
        low = cpu.power(CpuLoad(big_utilization=0.1, little_utilization=0.1, memory_intensity=0.1))
        high = cpu.power(CpuLoad(big_utilization=0.9, little_utilization=0.9, memory_intensity=0.9))
        assert high > low

    def test_memory_power_saturates(self):
        cpu = BigLittleCpu(DEVICE_CATALOG["pixel2"])
        first_half = cpu.memory_power(0.5) - cpu.memory_power(0.0)
        second_half = cpu.memory_power(1.0) - cpu.memory_power(0.5)
        assert second_half < first_half

    def test_corun_saving_positive_on_big_little(self):
        cpu = BigLittleCpu(DEVICE_CATALOG["pixel2"])
        saving = cpu.corun_saving(LIGHT_APP_LOAD, training_time_s=220.0, app_time_s=200.0)
        assert saving > 0.0

    def test_corun_saving_worse_on_homogeneous_cpu(self):
        """The Nexus 6's single cluster erodes (or reverses) the discount."""
        hetero = BigLittleCpu(DEVICE_CATALOG["pixel2"])
        homog = BigLittleCpu(DEVICE_CATALOG["nexus6"])
        s_hetero = hetero.corun_saving(INTENSIVE_APP_LOAD, 220.0, 200.0)
        s_homog = homog.corun_saving(INTENSIVE_APP_LOAD, 204.0, 200.0)
        assert s_homog < s_hetero

    def test_idle_below_training_below_corun(self):
        cpu = BigLittleCpu(DEVICE_CATALOG["hikey970"])
        assert cpu.idle_power() < cpu.training_power() < cpu.corun_power(INTENSIVE_APP_LOAD)

    def test_combined_load_clamps(self):
        combined = TRAINING_LOAD.combined(INTENSIVE_APP_LOAD)
        assert combined.little_utilization <= 1.0
        assert combined.memory_intensity <= 1.0

    def test_invalid_utilization_rejected(self):
        cpu = BigLittleCpu(DEVICE_CATALOG["pixel2"])
        with pytest.raises(ValueError):
            cpu.power(CpuLoad(big_utilization=1.5))
        with pytest.raises(ValueError):
            cpu.memory_power(-0.1)

    def test_load_for_intensity(self):
        assert load_for_intensity("light") is LIGHT_APP_LOAD
        with pytest.raises(KeyError):
            load_for_intensity("extreme")
