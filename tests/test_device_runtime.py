"""Tests for the mobile-device runtime, thermal model and FPS generator."""

import pytest

from repro.device.apps import APP_CATALOG, ForegroundApp
from repro.device.device import DeviceState, MobileDevice
from repro.device.fps import FpsTraceGenerator
from repro.device.models import DEVICE_CATALOG
from repro.device.thermal import ThermalModel
from repro.energy.power_model import PowerModel


@pytest.fixture()
def pixel2():
    return MobileDevice(user_id=0, spec=DEVICE_CATALOG["pixel2"], slot_seconds=1.0)


@pytest.fixture()
def power_model(table):
    return PowerModel(table=table)


def _app(name="news", arrival=0, duration=50):
    return ForegroundApp(spec=APP_CATALOG[name], arrival_slot=arrival, duration_slots=duration)


class TestDeviceStateMachine:
    def test_initial_state_is_idle(self, pixel2):
        assert pixel2.state() is DeviceState.IDLE
        assert pixel2.available

    def test_app_only_state(self, pixel2):
        pixel2.launch_app(_app())
        assert pixel2.state() is DeviceState.APP_ONLY
        assert pixel2.available  # an app does not block training

    def test_training_only_state(self, pixel2):
        pixel2.start_training(slot=0, model_version=0)
        assert pixel2.state() is DeviceState.TRAINING_ONLY
        assert not pixel2.available

    def test_corunning_state(self, pixel2):
        pixel2.launch_app(_app())
        pixel2.start_training(slot=0, model_version=0)
        assert pixel2.state() is DeviceState.CORUNNING

    def test_cannot_launch_two_apps(self, pixel2):
        pixel2.launch_app(_app())
        with pytest.raises(RuntimeError):
            pixel2.launch_app(_app("zoom"))

    def test_cannot_start_two_jobs(self, pixel2):
        pixel2.start_training(slot=0, model_version=0)
        with pytest.raises(RuntimeError):
            pixel2.start_training(slot=1, model_version=0)

    def test_training_duration_matches_table(self, pixel2, table):
        assert pixel2.training_duration_slots() == round(table.training_time("pixel2"))

    def test_app_expires_during_step(self, pixel2, power_model):
        pixel2.launch_app(_app(duration=3))
        for slot in range(3):
            pixel2.step(slot, power_model)
        outcome = pixel2.step(3, power_model)
        assert outcome.state is DeviceState.IDLE
        assert pixel2.current_app is None


class TestDeviceEnergyAndProgress:
    def test_training_completes_after_duration(self, pixel2, power_model):
        pixel2.start_training(slot=0, model_version=0)
        duration = pixel2.training_duration_slots()
        finished = []
        for slot in range(duration + 5):
            outcome = pixel2.step(slot, power_model)
            if outcome.training_finished:
                finished.append(slot)
        assert finished == [duration - 1]
        assert pixel2.completed_jobs == 1
        assert pixel2.available

    def test_intensive_corunning_slows_training(self, power_model):
        """Observation 2: a game extends the training time by >= 10%."""
        fast = MobileDevice(0, DEVICE_CATALOG["pixel2"])
        slow = MobileDevice(1, DEVICE_CATALOG["pixel2"])
        slow.launch_app(_app("candycrush", duration=10_000))
        fast.start_training(0, 0)
        slow.start_training(0, 0)

        def finish_slot(device):
            for slot in range(3000):
                if device.step(slot, power_model).training_finished:
                    return slot
            raise AssertionError("training never finished")

        fast_done = finish_slot(fast)
        slow_done = finish_slot(slow)
        assert slow_done >= fast_done * 1.08

    def test_energy_accumulates_at_correct_power(self, pixel2, power_model, table):
        for slot in range(10):
            pixel2.step(slot, power_model)
        assert pixel2.total_energy_j == pytest.approx(10 * table.idle_power("pixel2"))

    def test_corunning_energy_uses_corun_level(self, power_model, table):
        device = MobileDevice(0, DEVICE_CATALOG["hikey970"])
        device.launch_app(_app("zoom", duration=5))
        device.start_training(0, 0)
        outcome = device.step(0, power_model)
        assert outcome.energy_j == pytest.approx(table.corun_power("hikey970", "zoom"))

    def test_utilization_summary_sums_to_one(self, pixel2, power_model):
        pixel2.launch_app(_app(duration=5))
        for slot in range(20):
            pixel2.step(slot, power_model)
        summary = pixel2.utilization_summary()
        assert sum(summary.values()) == pytest.approx(1.0)
        assert summary["app_only"] > 0.0

    def test_invalid_slot_seconds(self):
        with pytest.raises(ValueError):
            MobileDevice(0, DEVICE_CATALOG["pixel2"], slot_seconds=0.0)


class TestThermalModel:
    def test_heats_towards_target(self):
        thermal = ThermalModel(DEVICE_CATALOG["pixel2"], ambient_c=25.0)
        for _ in range(600):
            thermal.step(power_w=8.0, dt_s=1.0)
        assert thermal.state.temperature_c > 40.0

    def test_idle_device_stays_cool(self):
        thermal = ThermalModel(DEVICE_CATALOG["pixel2"], ambient_c=25.0)
        for _ in range(600):
            thermal.step(power_w=0.5, dt_s=1.0)
        assert not thermal.state.throttled

    def test_throttling_raises_slowdown(self):
        thermal = ThermalModel(DEVICE_CATALOG["pixel2"], throttle_temp_c=30.0)
        for _ in range(600):
            thermal.step(power_w=10.0, dt_s=1.0)
        assert thermal.state.throttled
        assert thermal.training_slowdown() > 1.0

    def test_homogeneous_device_has_extra_contention(self):
        hetero = ThermalModel(DEVICE_CATALOG["pixel2"])
        homog = ThermalModel(DEVICE_CATALOG["nexus6"])
        game = APP_CATALOG["candycrush"]
        assert homog.training_slowdown(game) > hetero.training_slowdown(game)

    def test_reset(self):
        thermal = ThermalModel(DEVICE_CATALOG["pixel2"])
        thermal.step(power_w=10.0, dt_s=100.0)
        thermal.reset()
        assert thermal.state.temperature_c == pytest.approx(25.0)

    def test_invalid_inputs(self):
        thermal = ThermalModel(DEVICE_CATALOG["pixel2"])
        with pytest.raises(ValueError):
            thermal.step(power_w=-1.0)
        with pytest.raises(ValueError):
            thermal.step(power_w=1.0, dt_s=0.0)
        with pytest.raises(ValueError):
            ThermalModel(DEVICE_CATALOG["pixel2"], tau_s=0.0)


class TestFpsTraces:
    def test_mean_fps_close_to_nominal(self):
        generator = FpsTraceGenerator.for_app_name("angrybird", seed=0)
        trace = generator.trace(200, corunning=False)
        assert FpsTraceGenerator.mean_fps(trace) == pytest.approx(60.0, abs=3.0)

    def test_corunning_degradation_is_negligible(self):
        """Observation 3: co-running does not noticeably reduce FPS."""
        generator = FpsTraceGenerator.for_app_name("tiktok", seed=1)
        alone = generator.trace(200, corunning=False)
        corun = generator.trace(200, corunning=True)
        degradation = FpsTraceGenerator.relative_degradation(alone, corun)
        assert degradation < 0.10

    def test_trace_length_and_nonnegative(self):
        generator = FpsTraceGenerator.for_app_name("zoom", seed=2)
        trace = generator.trace(50)
        assert len(trace) == 50
        assert all(sample.fps >= 0.0 for sample in trace)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            FpsTraceGenerator.for_app_name("fortnite")

    def test_invalid_duration(self):
        generator = FpsTraceGenerator.for_app_name("zoom")
        with pytest.raises(ValueError):
            generator.trace(0)

    def test_empty_trace_mean_rejected(self):
        with pytest.raises(ValueError):
            FpsTraceGenerator.mean_fps([])
