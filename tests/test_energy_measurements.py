"""Tests for the Table II / Table III calibration data."""

import math

import pytest

from repro.energy.measurements import (
    APPS,
    DEVICES,
    IDLE_POWER_W,
    MeasurementTable,
    TABLE_II,
    TRAINING_POWER_W,
    energy_saving_fraction,
)


class TestTableContents:
    def test_all_devices_present(self, table):
        assert set(table.devices()) == set(DEVICES)

    def test_all_apps_present_per_device(self, table):
        for device in DEVICES:
            assert set(table.apps(device)) == set(APPS)

    def test_training_row_values(self, table):
        assert table.training_power("pixel2") == pytest.approx(1.35)
        assert table.training_time("pixel2") == pytest.approx(223.0)
        assert table.training_power("hikey970") == pytest.approx(7.87)
        assert table.training_time("nexus6") == pytest.approx(204.0)

    def test_idle_power_matches_table3(self, table):
        assert table.idle_power("nexus6") == pytest.approx(0.238)
        assert table.idle_power("nexus6p") == pytest.approx(0.486)
        assert table.idle_power("pixel2") == pytest.approx(0.689)

    def test_overhead_power_above_idle(self, table):
        for device in DEVICES:
            assert table.overhead_power(device) > table.idle_power(device)

    def test_power_ordering_eq10(self, table):
        """On big.LITTLE devices: P_a' > P_b > P_d (corun above training above idle)."""
        for device in ("pixel2", "hikey970", "nexus6p"):
            for app in APPS:
                assert table.corun_power(device, app) > table.idle_power(device)
            assert table.training_power(device) > table.idle_power(device)

    def test_corun_power_above_app_power(self, table):
        """Adding the training task never reduces instantaneous power."""
        for device in DEVICES:
            for app in APPS:
                assert table.corun_power(device, app) >= table.app_power(device, app)

    def test_rows_iterates_all_pairs(self, table):
        rows = list(table.rows())
        assert len(rows) == len(DEVICES) * len(APPS)


class TestDerivedQuantities:
    def test_energy_saving_formula(self):
        # Pixel2 / Map from the paper: ~30% saving.
        saving = energy_saving_fraction(1.35, 223.0, 1.60, 2.20, 196.0)
        assert saving == pytest.approx(0.30, abs=0.01)

    def test_energy_saving_negative_case(self):
        # Nexus6 / CandyCrush: co-running costs more energy (-39%).
        saving = energy_saving_fraction(1.8, 204.0, 1.3, 2.3, 997.0)
        assert saving == pytest.approx(-0.39, abs=0.02)

    def test_energy_saving_rejects_nonpositive_separate_energy(self):
        with pytest.raises(ValueError):
            energy_saving_fraction(0.0, 0.0, 0.0, 1.0, 10.0)

    def test_derived_saving_matches_reported_within_tolerance(self, table):
        """Every derived Table II saving is within 4 points of the printed one.

        Table II prints power to two significant digits, so the re-derived
        saving can differ by a few percentage points from the printed value.
        """
        for device, app, row in table.rows():
            derived = table.energy_saving(device, app)
            assert derived == pytest.approx(row.reported_saving, abs=0.04), (device, app)

    def test_newer_devices_save_more_than_nexus6(self, table):
        assert table.mean_saving("pixel2") > table.mean_saving("nexus6")
        assert table.mean_saving("hikey970") > table.mean_saving("nexus6")

    def test_hikey_and_pixel_savings_in_paper_band(self, table):
        """Observation 1: co-running offers roughly 30-50% savings."""
        assert 0.30 <= table.mean_saving("hikey970") <= 0.50
        assert 0.20 <= table.mean_saving("pixel2") <= 0.50

    def test_decision_overhead_below_ten_percent(self, table):
        for device in table.devices():
            assert 0.0 < table.decision_overhead(device) < 0.10

    def test_separate_and_corun_energy_consistent_with_saving(self, table):
        for device, app, _ in table.rows():
            separate = table.separate_energy_j(device, app)
            corun = table.corun_energy_j(device, app)
            saving = table.energy_saving(device, app)
            assert saving == pytest.approx(1.0 - corun / separate)


class TestErrorHandling:
    def test_unknown_device_raises(self, table):
        with pytest.raises(KeyError):
            table.training_power("iphone")
        with pytest.raises(KeyError):
            table.apps("iphone")

    def test_unknown_app_raises(self, table):
        with pytest.raises(KeyError):
            table.measurement("pixel2", "fortnite")

    def test_custom_table_is_isolated(self):
        custom = MeasurementTable(
            table={"pixel2": dict(TABLE_II["pixel2"])},
            training_power={"pixel2": TRAINING_POWER_W["pixel2"]},
            training_time={"pixel2": 223.0},
            idle_power={"pixel2": IDLE_POWER_W["pixel2"]},
            overhead_power={"pixel2": 0.736},
        )
        assert custom.devices() == ["pixel2"]
        with pytest.raises(KeyError):
            custom.training_power("nexus6")
