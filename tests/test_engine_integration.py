"""Integration tests: the full simulation engine under every policy."""

import numpy as np
import pytest

from repro.core.offline import OfflinePolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import ImmediatePolicy, SyncPolicy
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine


class TestImmediateRun:
    def test_energy_is_positive_and_bounded(self, immediate_result, smoke_config):
        total = immediate_result.total_energy_j()
        assert total > 0.0
        # Upper bound: every user at the highest co-running power all the time.
        max_power = 12.0
        assert total < smoke_config.num_users * smoke_config.total_slots * max_power

    def test_energy_at_least_idle_floor(self, immediate_result, smoke_config, table):
        """No schedule can consume less than everyone idling the whole time."""
        min_idle = min(table.idle_power(d) for d in table.devices())
        floor = smoke_config.num_users * smoke_config.total_slots * min_idle
        assert immediate_result.total_energy_j() >= floor

    def test_updates_were_applied(self, immediate_result):
        assert immediate_result.num_updates > 0
        assert len(immediate_result.trace.update_samples) == immediate_result.num_updates

    def test_accuracy_was_evaluated(self, immediate_result, smoke_config):
        samples = immediate_result.accuracy.samples
        assert len(samples) >= 3
        assert samples[0].time_s == 0.0
        assert samples[-1].time_s == pytest.approx(smoke_config.total_seconds())
        assert 0.0 <= immediate_result.final_accuracy() <= 1.0

    def test_accuracy_improves_over_random_guessing(self, immediate_result, smoke_config):
        random_guess = 1.0 / smoke_config.num_classes
        assert immediate_result.best_accuracy() > random_guess + 0.05

    def test_cumulative_energy_is_monotone(self, immediate_result):
        series = immediate_result.trace.energy_series_kj()
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_immediate_schedules_every_decision(self, immediate_result):
        assert immediate_result.trace.decisions["idle"] == 0
        assert immediate_result.trace.schedule_fraction() == 1.0

    def test_device_assignment_recorded(self, immediate_result, smoke_config):
        assert len(immediate_result.device_names) == smoke_config.num_users

    def test_communication_happened(self, immediate_result):
        assert immediate_result.comm_bytes_mb > 0.0

    def test_engine_is_single_shot(self, smoke_config, smoke_dataset):
        engine = SimulationEngine(smoke_config, ImmediatePolicy(), dataset=smoke_dataset)
        engine.run()
        with pytest.raises(RuntimeError):
            engine.run()


class TestOnlineRun:
    def test_online_saves_energy_vs_immediate(self, online_result, immediate_result):
        assert online_result.total_energy_j() < immediate_result.total_energy_j()
        assert online_result.energy_saving_vs(immediate_result) > 0.05

    def test_online_queue_histories_recorded(self, online_result, smoke_config):
        assert len(online_result.queue_history) == smoke_config.total_slots + 1
        assert max(online_result.queue_history) <= smoke_config.num_users
        assert online_result.mean_queue_length() > 0.0

    def test_online_makes_fewer_updates_than_immediate(self, online_result, immediate_result):
        assert online_result.num_updates <= immediate_result.num_updates

    def test_online_decision_evaluations_counted(self, online_result):
        assert online_result.decision_evaluations > 0

    def test_update_lags_nonnegative(self, online_result):
        lags = online_result.trace.update_lags()
        assert all(lag >= 0 for lag in lags)

    def test_gap_traces_recorded_for_all_users(self, online_result, smoke_config):
        for user in range(smoke_config.num_users):
            assert online_result.trace.user_gap_trace(user)


class TestOtherPolicies:
    def test_sync_rounds_aggregate_all_users(self, smoke_config, smoke_dataset):
        result = SimulationEngine(smoke_config, SyncPolicy(), dataset=smoke_dataset).run()
        assert result.num_updates > 0
        # Every applied update in sync mode is part of a full round.
        assert result.num_updates % smoke_config.num_users == 0
        assert all(s.sync_round for s in result.trace.update_samples)
        assert all(s.lag == 0 for s in result.trace.update_samples)

    def test_offline_policy_waits_for_corunning(self, smoke_config, smoke_dataset):
        policy = OfflinePolicy(staleness_bound=1000.0, window_slots=200)
        result = SimulationEngine(smoke_config, policy, dataset=smoke_dataset).run()
        immediate = SimulationEngine(
            smoke_config, ImmediatePolicy(), dataset=smoke_dataset
        ).run()
        assert result.total_energy_j() < immediate.total_energy_j()
        assert result.num_updates <= immediate.num_updates
        # Most offline jobs should be co-running jobs.
        assert result.trace.corun_jobs >= result.trace.background_jobs

    def test_scheduler_overhead_accounting(self, smoke_dataset):
        config = SimulationConfig(
            num_users=4, total_slots=300, app_arrival_prob=0.01, seed=7,
            num_train_samples=600, num_test_samples=300, eval_interval_slots=150,
            include_scheduler_overhead=True,
        )
        with_overhead = SimulationEngine(
            config, OnlinePolicy(v=1e5, staleness_bound=500.0), dataset=smoke_dataset
        ).run()
        without = SimulationEngine(
            config.scaled(include_scheduler_overhead=False),
            OnlinePolicy(v=1e5, staleness_bound=500.0),
            dataset=smoke_dataset,
        ).run()
        assert with_overhead.total_energy_j() > without.total_energy_j()
        extra = with_overhead.total_energy_j() - without.total_energy_j()
        # Table III: the decision overhead stays below 10% of idle power.
        assert extra / without.total_energy_j() < 0.10

    def test_non_iid_partitioning_runs(self):
        config = SimulationConfig(
            num_users=4, total_slots=250, app_arrival_prob=0.01, seed=3,
            num_train_samples=400, num_test_samples=200, eval_interval_slots=125,
            non_iid_alpha=0.3,
        )
        result = SimulationEngine(config, ImmediatePolicy()).run()
        assert result.num_updates > 0

    def test_diurnal_arrivals_run(self):
        config = SimulationConfig(
            num_users=4, total_slots=250, app_arrival_prob=0.01, seed=3,
            num_train_samples=400, num_test_samples=200, eval_interval_slots=125,
            diurnal_arrivals=True,
        )
        result = SimulationEngine(config, OnlinePolicy(v=1000.0)).run()
        assert result.total_energy_j() > 0.0

    def test_explicit_device_names(self):
        config = SimulationConfig(
            num_users=3, total_slots=200, app_arrival_prob=0.0, seed=1,
            num_train_samples=300, num_test_samples=100, eval_interval_slots=100,
            device_names=["hikey970", "pixel2", "nexus6"],
        )
        result = SimulationEngine(config, ImmediatePolicy()).run()
        assert result.device_names == ["hikey970", "pixel2", "nexus6"]


class TestDeterminism:
    def test_same_seed_same_result(self, smoke_dataset):
        config = SimulationConfig(
            num_users=4, total_slots=300, app_arrival_prob=0.01, seed=11,
            num_train_samples=600, num_test_samples=300, eval_interval_slots=150,
        )
        first = SimulationEngine(config, OnlinePolicy(v=4000.0), dataset=smoke_dataset).run()
        second = SimulationEngine(config, OnlinePolicy(v=4000.0), dataset=smoke_dataset).run()
        assert first.total_energy_j() == pytest.approx(second.total_energy_j())
        assert first.num_updates == second.num_updates
        assert first.final_accuracy() == pytest.approx(second.final_accuracy())

    def test_different_seeds_differ(self, smoke_dataset):
        base = SimulationConfig(
            num_users=4, total_slots=300, app_arrival_prob=0.02, seed=11,
            num_train_samples=600, num_test_samples=300, eval_interval_slots=150,
        )
        first = SimulationEngine(base, ImmediatePolicy(), dataset=smoke_dataset).run()
        second = SimulationEngine(
            base.scaled(seed=12), ImmediatePolicy(), dataset=smoke_dataset
        ).run()
        assert first.total_energy_j() != pytest.approx(second.total_energy_j())
