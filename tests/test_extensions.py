"""Tests for the extension modules: decision granularity, DVFS, carbon, plotting."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_multi_plot, ascii_plot, sparkline
from repro.core.granularity import DecisionIntervalPolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import Decision, ImmediatePolicy, SlotContext
from repro.device.dvfs import DvfsGovernor, OperatingPoint, default_opp_table
from repro.energy.carbon import GRID_INTENSITIES, CarbonAccountant, CarbonIntensity


class TestDecisionIntervalPolicy:
    def _context(self):
        return SlotContext(slot=0, slot_seconds=1.0, num_arrivals=1, num_ready=1,
                           num_training=0, num_users=4)

    def test_interval_one_is_transparent(self, observation_factory):
        wrapped = DecisionIntervalPolicy(ImmediatePolicy(), interval_slots=1)
        for waiting in range(5):
            obs = observation_factory(waiting_slots=waiting)
            assert wrapped.decide(obs) is Decision.SCHEDULE
        assert wrapped.skipped_decisions == 0

    def test_skips_between_decision_points(self, observation_factory):
        wrapped = DecisionIntervalPolicy(ImmediatePolicy(), interval_slots=10)
        decisions = [
            wrapped.decide(observation_factory(waiting_slots=w)) for w in range(20)
        ]
        assert decisions[0] is Decision.SCHEDULE
        assert decisions[10] is Decision.SCHEDULE
        assert all(d is Decision.IDLE for i, d in enumerate(decisions) if i % 10 != 0)
        assert wrapped.skipped_decisions == 18

    def test_global_alignment_mode(self, observation_factory):
        wrapped = DecisionIntervalPolicy(ImmediatePolicy(), interval_slots=5,
                                         align_to_arrival=False)
        assert wrapped.decide(observation_factory(slot=5, waiting_slots=3)) is Decision.SCHEDULE
        assert wrapped.decide(observation_factory(slot=6, waiting_slots=0)) is Decision.IDLE

    def test_fewer_inner_evaluations_reduce_overhead(self, observation_factory):
        inner = OnlinePolicy(v=0.0, staleness_bound=100.0)
        wrapped = DecisionIntervalPolicy(inner, interval_slots=4)
        wrapped.begin_slot(self._context())
        for waiting in range(8):
            wrapped.decide(observation_factory(waiting_slots=waiting))
        assert wrapped.decision_cost_evaluations() == 2

    def test_delegation_of_queues_and_lifecycle(self, observation_factory):
        inner = OnlinePolicy(v=100.0, staleness_bound=50.0)
        wrapped = DecisionIntervalPolicy(inner, interval_slots=2)
        context = self._context()
        wrapped.begin_slot(context)
        wrapped.decide(observation_factory(waiting_slots=0))
        wrapped.end_slot(context, num_scheduled=0, gap_sum=100.0)
        assert wrapped.virtual_queue.length > 0.0
        assert wrapped.task_queue is inner.task_queue
        wrapped.reset()
        assert inner.task_queue.length == 0.0
        assert wrapped.skipped_decisions == 0

    def test_name_and_aggregation_mirror_inner(self):
        wrapped = DecisionIntervalPolicy(ImmediatePolicy(), interval_slots=30)
        assert "immediate" in wrapped.name and "30" in wrapped.name
        assert wrapped.aggregation is ImmediatePolicy.aggregation

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            DecisionIntervalPolicy(ImmediatePolicy(), interval_slots=0)


class TestDvfsGovernor:
    def test_default_opp_table_shapes(self):
        table = default_opp_table(2.0, num_points=5)
        assert len(table) == 5
        assert table[-1].freq_ghz == pytest.approx(2.0)
        assert table[-1].relative_power == pytest.approx(1.0)
        frequencies = [p.freq_ghz for p in table]
        assert frequencies == sorted(frequencies)

    def test_frequency_follows_utilization(self):
        governor = DvfsGovernor(default_opp_table(2.0))
        low = governor.select(0.1)
        high = governor.select(0.9)
        assert low.freq_ghz < high.freq_ghz
        assert governor.power_scale(0.1) < governor.power_scale(0.9)

    def test_training_load_pins_max_frequency(self):
        """Footnote 1: the CPU stays at the maximum frequency during training."""
        governor = DvfsGovernor(default_opp_table(1.9))
        assert governor.stays_at_max_under_training()

    def test_frequency_trace(self):
        governor = DvfsGovernor(default_opp_table(2.0))
        trace = governor.frequency_trace([0.0, 0.5, 1.0])
        assert len(trace) == 3
        assert trace[0] <= trace[1] <= trace[2]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            DvfsGovernor([])
        with pytest.raises(ValueError):
            DvfsGovernor(default_opp_table(2.0), margin=0.5)
        with pytest.raises(ValueError):
            default_opp_table(0.0)
        with pytest.raises(ValueError):
            default_opp_table(2.0, num_points=1)
        with pytest.raises(ValueError):
            OperatingPoint(freq_ghz=-1.0, relative_power=0.5)
        governor = DvfsGovernor(default_opp_table(2.0))
        with pytest.raises(ValueError):
            governor.select(1.5)


class TestCarbonAccounting:
    def test_grams_conversion(self):
        accountant = CarbonAccountant("world_average")
        # 1 kWh = 3.6e6 J at 475 g/kWh.
        assert accountant.grams_co2(3.6e6) == pytest.approx(475.0)
        assert accountant.grams_co2(0.0) == 0.0

    def test_region_selection_and_custom_intensity(self):
        hydro = CarbonAccountant("hydro")
        coal = CarbonAccountant("coal_heavy")
        assert coal.grams_co2(1e6) > hydro.grams_co2(1e6)
        custom = CarbonAccountant(CarbonIntensity("lab", 100.0))
        assert custom.grams_co2(3.6e6) == pytest.approx(100.0)

    def test_result_based_accounting(self, immediate_result, online_result):
        accountant = CarbonAccountant("us_average")
        saving = accountant.saving_grams(online_result, immediate_result)
        assert saving > 0.0
        assert accountant.grams_co2_from_result(online_result) < (
            accountant.grams_co2_from_result(immediate_result)
        )

    def test_fleet_extrapolation(self):
        accountant = CarbonAccountant("eu_average")
        yearly = accountant.fleet_extrapolation(
            energy_j_per_device=10_000.0, num_devices=1_000_000, rounds_per_day=1.0
        )
        assert yearly > 0.0
        assert yearly == pytest.approx(
            accountant.grams_co2(10_000.0 * 1_000_000 * 365.0)
        )

    def test_invalid_inputs(self):
        with pytest.raises(KeyError):
            CarbonAccountant("mars")
        with pytest.raises(ValueError):
            CarbonIntensity("x", -1.0)
        accountant = CarbonAccountant()
        with pytest.raises(ValueError):
            accountant.grams_co2(-1.0)
        with pytest.raises(ValueError):
            accountant.fleet_extrapolation(1.0, 0)

    def test_known_regions_present(self):
        assert {"world_average", "us_average", "eu_average"} <= set(GRID_INTENSITIES)


class TestAsciiPlotting:
    def test_sparkline_levels(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] != line[-1]
        assert sparkline([5.0, 5.0]) == "▁▁"
        with pytest.raises(ValueError):
            sparkline([])

    def test_single_series_plot_contains_markers_and_labels(self):
        text = ascii_plot([0, 1, 2, 3], [0, 1, 4, 9], title="quadratic", x_label="t")
        assert "quadratic" in text
        assert "*" in text
        assert "9" in text  # y-axis maximum label

    def test_multi_series_plot_legend(self):
        text = ascii_multi_plot(
            {"a": ([0, 1, 2], [0, 1, 2]), "b": ([0, 1, 2], [2, 1, 0])},
            title="cross", x_label="x",
        )
        assert "* a" in text and "+ b" in text
        # Both markers appear on the canvas.
        assert "*" in text and "+" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_multi_plot({})
        with pytest.raises(ValueError):
            ascii_multi_plot({"a": ([0, 1], [1])})
        with pytest.raises(ValueError):
            ascii_multi_plot({"a": ([], [])})
        with pytest.raises(ValueError):
            ascii_multi_plot({"a": ([0], [0])}, width=2, height=2)

    def test_constant_series_does_not_crash(self):
        text = ascii_plot([0, 1, 2], [1.0, 1.0, 1.0])
        assert "|" in text
