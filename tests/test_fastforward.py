"""Event-horizon fast-forward: kernel building blocks and end-to-end traces.

``tests/test_fleet.py`` holds the full three-way equivalence matrix; this
module covers the fast-forward machinery itself — the exact multi-slot queue
recursions, the arrival event-iterator API, the evaluation cache, and the
sparse "overnight" regime where whole stretches of the horizon collapse into
single kernel calls.
"""

from __future__ import annotations

import pytest

from repro.core.online import OnlinePolicy
from repro.core.policies import ImmediatePolicy
from repro.core.queues import TaskQueue, VirtualQueue
from repro.device.apps import ForegroundApp, APP_CATALOG
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine


PHONE_MIX = {"pixel2": 1.0 / 3, "nexus6": 1.0 / 3, "nexus6p": 1.0 / 3}


def _overnight_config(**overrides) -> SimulationConfig:
    """A sparse battery-gated fleet: drains, then idles for the rest of the run."""
    base = dict(
        num_users=12,
        total_slots=2500,
        app_arrival_prob=0.001,
        seed=3,
        num_train_samples=240,
        num_test_samples=100,
        eval_interval_slots=500,
        device_mix=PHONE_MIX,
        battery_capacity_j=900.0,
        battery_charge_rate_w=0.0,
        min_battery_soc=0.2,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestQueueMultiSlotRecursions:
    def test_task_queue_advance_idle_matches_updates(self):
        fast = TaskQueue()
        slow = TaskQueue()
        for queue in (fast, slow):
            queue.update(arrivals=5, services=2)
        fast.advance_idle(7)
        for _ in range(7):
            slow.update(arrivals=0, services=0)
        assert fast.length == slow.length
        assert fast.history() == slow.history()

    def test_task_queue_advance_idle_rejects_negative(self):
        with pytest.raises(ValueError):
            TaskQueue().advance_idle(-1)

    @pytest.mark.parametrize(
        "initial,gap,bound,slots",
        [
            (0.0, 0.3, 1.0, 50),  # stays pinned at zero (fixpoint)
            (10.0, 0.3, 1.0, 50),  # drains to zero, then fixpoint
            (0.0, 2.5, 1.0, 40),  # grows every slot (no fixpoint)
            (4.0, 1.0, 1.0, 25),  # G == Lb exactly
        ],
    )
    def test_virtual_queue_advance_constant_matches_updates(
        self, initial, gap, bound, slots
    ):
        fast = VirtualQueue(bound, initial=initial)
        slow = VirtualQueue(bound, initial=initial)
        values = fast.advance_constant(gap, slots)
        expected = [slow.update(gap) for _ in range(slots)]
        assert values == expected
        assert fast.length == slow.length
        assert fast.history() == slow.history()

    def test_virtual_queue_advance_constant_rejects_bad_args(self):
        queue = VirtualQueue(1.0)
        with pytest.raises(ValueError):
            queue.advance_constant(-0.5, 3)
        with pytest.raises(ValueError):
            queue.advance_constant(0.5, -3)


class TestArrivalEventIterator:
    def _schedule(self):
        spec = APP_CATALOG["tiktok"]
        arrivals = {
            0: [ForegroundApp(spec=spec, arrival_slot=4, duration_slots=3)],
            1: [
                ForegroundApp(spec=spec, arrival_slot=4, duration_slots=2),
                ForegroundApp(spec=spec, arrival_slot=9, duration_slots=2),
            ],
            2: [],
        }
        return ArrivalSchedule(arrivals)

    def test_launch_slots_sorted_distinct(self):
        assert self._schedule().launch_slots() == [4, 9]

    def test_launch_slots_returns_fresh_copies(self):
        schedule = self._schedule()
        first = schedule.launch_slots()
        first.append(99)
        assert schedule.launch_slots() == [4, 9]


class TestFastForwardEndToEnd:
    def test_flag_validation_and_default(self):
        config = _overnight_config(total_slots=50)
        engine = SimulationEngine(config, ImmediatePolicy())
        assert engine.fast_forward is True
        engine = SimulationEngine(config, ImmediatePolicy(), fast_forward=False)
        assert engine.fast_forward is False

    def test_per_slot_series_covers_every_slot(self):
        """Fast-forwarded slots must still backfill the cumulative series."""
        config = _overnight_config()
        result = SimulationEngine(config, ImmediatePolicy(), backend="fleet").run()
        assert len(result.accountant.per_slot_totals()) == config.total_slots
        totals = result.accountant.per_slot_totals()
        assert all(b >= a for a, b in zip(totals, totals[1:]))

    def test_overnight_sparse_identical_to_slot_by_slot(self):
        """The drained-fleet regime exercises the longest quiet regions."""
        config = _overnight_config()
        slow = SimulationEngine(
            config, ImmediatePolicy(), backend="fleet", fast_forward=False
        ).run()
        fast = SimulationEngine(
            config, ImmediatePolicy(), backend="fleet", fast_forward=True
        ).run()
        assert slow.total_energy_j() == fast.total_energy_j()
        assert slow.accountant.per_slot_totals() == fast.accountant.per_slot_totals()
        assert slow.trace.slot_samples == fast.trace.slot_samples
        assert slow.trace.update_samples == fast.trace.update_samples
        assert slow.accuracy.accuracies() == fast.accuracy.accuracies()
        assert slow.accuracy.times() == fast.accuracy.times()
        assert slow.final_battery_soc == fast.final_battery_soc
        for user in range(config.num_users):
            assert slow.trace.user_gap_trace(user) == fast.trace.user_gap_trace(user)
            assert slow.accountant.user_breakdown(user) == fast.accountant.user_breakdown(user)

    def test_online_policy_queue_histories_backfilled(self):
        """Quiet regions under the online policy replay both queue recursions."""
        config = _overnight_config(total_slots=1200)
        slow = SimulationEngine(
            config,
            OnlinePolicy(v=0.0, staleness_bound=500.0),
            backend="fleet",
            fast_forward=False,
        ).run()
        fast = SimulationEngine(
            config,
            OnlinePolicy(v=0.0, staleness_bound=500.0),
            backend="fleet",
            fast_forward=True,
        ).run()
        assert len(fast.queue_history) == config.total_slots + 1
        assert slow.queue_history == fast.queue_history
        assert slow.virtual_queue_history == fast.virtual_queue_history

    def test_evaluation_cache_reuses_frozen_model(self):
        """Evaluation ticks inside a quiet region reuse the cached accuracy."""
        config = _overnight_config(total_slots=1600, eval_interval_slots=200)
        engine = SimulationEngine(config, ImmediatePolicy(), backend="fleet")
        calls = {"n": 0}
        original = engine.eval_model.set_flat_params

        def counting(params):
            calls["n"] += 1
            return original(params)

        engine.eval_model.set_flat_params = counting
        result = engine.run()
        # Interior evals at slots 200..1400 plus the initial and final
        # evaluations = 9 records, but the drained tail reuses the
        # version-keyed cache instead of re-running the forward pass.
        assert len(result.accuracy.accuracies()) == 9
        assert calls["n"] < 9
