"""Deterministic fault injection and the recovery machinery it exercises.

The chaos contract (docs/faults.md): a seeded :class:`FaultPlan` must make a
run *bumpy*, never *different*.  A sharded run that loses a worker to
SIGKILL, a hung pipe, or a straggler must recover from the supervisor's
in-memory snapshot and finish bitwise-identical to the fault-free run; a
service job whose checkpoint save is corrupted or hits a full disk must
retry from its latest good snapshot and produce the same
:class:`~repro.analysis.runner.RunSummary` a clean job produces.

Layered here:

* plan/injector semantics — seeded generation, JSON round-trips, one-shot
  consumption, replay-window masking (:meth:`consume_engine_through`);
* supervised engine recovery — kill / hang / straggle / degrade, each
  compared ``==`` against the fault-free observables, plus the
  unsupervised error surfaces (:class:`ShardDied` / :class:`ShardTimeout`);
* checkpoint-store faults — save-time verification, ENOSPC, retention
  rotation, on-disk corruption detected at load;
* service self-healing — retry-from-checkpoint to a bitwise-equal result,
  poison-job quarantine, and the quarantine-clearing ``resume`` path;
* the HTTP client — bounded connect, retry-then-:class:`ServiceUnavailable`
  against a dead server, and a live round-trip through :class:`ServiceAPI`.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.analysis.runner import RunSpec
from repro.core.online import OnlinePolicy
from repro.faults import (
    ENGINE_FAULT_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    poll_intervals,
)
from repro.scenarios import compile_scenario, get_scenario
from repro.service.api import ServiceAPI
from repro.service.checkpoint import CheckpointError, CheckpointStore
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.jobs import ExperimentService
from repro.sim.config import SimulationConfig
from repro.sim.shard import ShardDied, ShardTimeout, ShardedEngine

# ---------------------------------------------------------------------------
# plan + injector semantics
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_generate_is_seed_deterministic(self):
        a = FaultPlan.generate(seed=11, total_slots=200, shards=4)
        b = FaultPlan.generate(seed=11, total_slots=200, shards=4)
        assert a.to_dict() == b.to_dict()
        assert FaultPlan.generate(seed=12, total_slots=200, shards=4).to_dict() != a.to_dict()

    def test_generate_lands_mid_horizon_with_valid_targets(self):
        plan = FaultPlan.generate(seed=5, total_slots=100, shards=3, num_events=20)
        assert len(plan.events) == 20
        for event in plan.events:
            assert event.kind in FAULT_KINDS
            assert 10 <= event.at < 90
            if event.kind in ENGINE_FAULT_KINDS:
                assert event.shard is not None and 0 <= event.shard < 3
            else:
                assert event.shard is None

    def test_json_round_trip(self):
        plan = FaultPlan.generate(seed=7, total_slots=60, shards=2)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(payload).to_dict() == plan.to_dict()

    def test_events_are_canonically_ordered(self):
        plan = FaultPlan(events=[
            FaultEvent(kind="kill_shard", at=30, shard=1),
            FaultEvent(kind="disk_full", at=5),
            FaultEvent(kind="kill_shard", at=30, shard=0),
        ])
        assert [(e.at, e.shard) for e in plan.events] == [(5, None), (30, 0), (30, 1)]

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor_strike", at=3, shard=0)
        with pytest.raises(ValueError, match="target shard"):
            FaultEvent(kind="kill_shard", at=3)
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(kind="disk_full", at=-1)


class TestFaultInjector:
    def test_worker_events_filter_by_shard_and_kind(self):
        injector = FaultInjector(FaultPlan(events=[
            FaultEvent(kind="kill_shard", at=10, shard=0),
            FaultEvent(kind="slow_shard", at=12, shard=1, delay_s=0.01),
            FaultEvent(kind="corrupt_checkpoint", at=15),
        ]))
        kinds = [e["kind"] for e in injector.worker_events(0)]
        assert kinds == ["kill_shard"]  # store events never ship to workers
        assert [e["kind"] for e in injector.worker_events(1)] == ["slow_shard"]

    def test_consume_engine_through_masks_the_replay_window(self):
        injector = FaultInjector(FaultPlan(events=[
            FaultEvent(kind="kill_shard", at=10, shard=0),
            FaultEvent(kind="drop_message", at=40, shard=0),
        ]))
        consumed = injector.consume_engine_through(25)
        assert [e.at for e in consumed] == [10]
        # The replayed window must not re-kill; the later event stays armed.
        assert [e["at"] for e in injector.worker_events(0)] == [40]
        assert [e.at for e in injector.fired_events()] == [10]
        assert [e.at for e in injector.pending_events()] == [40]

    def test_store_events_fire_exactly_once(self):
        injector = FaultInjector(FaultPlan(events=[
            FaultEvent(kind="corrupt_checkpoint", at=15),
        ]))
        assert injector.on_checkpoint_save(10) is None  # not armed yet
        assert injector.on_checkpoint_save(20) == "corrupt_checkpoint"
        assert injector.on_checkpoint_save(30) is None  # consumed


class TestRetryPolicy:
    def test_delays_grow_geometrically_and_cap(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, factor=2.0, cap_s=0.35)
        assert [policy.delay_s(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.35, 0.35]

    def test_attempt_budget_boundary(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(2) and not policy.should_retry(3)
        assert not RetryPolicy(max_attempts=1).should_retry(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=2).delay_s(0)

    def test_poll_intervals_back_off_to_the_cap(self):
        gen = poll_intervals(first_s=0.001, factor=4.0, cap_s=0.01)
        drawn = [next(gen) for _ in range(4)]
        assert drawn == [0.001, 0.004, 0.01, 0.01]


# ---------------------------------------------------------------------------
# supervised engine recovery (bitwise vs fault-free)
# ---------------------------------------------------------------------------


def _chaos_config() -> SimulationConfig:
    compiled = compile_scenario(get_scenario("paper-baseline"))
    config = dict(compiled.overrides)
    config.update(
        num_users=6,
        total_slots=60,
        seed=7,
        num_train_samples=120,
        num_test_samples=60,
        hidden_dims=(8,),
        eval_interval_slots=20,
        trace_interval_slots=10,
    )
    return SimulationConfig(**config)


def _chaos_run(plan=None, shards=2, degrade=False, max_respawns=3, ipc_timeout_s=5.0):
    engine = ShardedEngine(
        _chaos_config(),
        OnlinePolicy(v=4000.0),
        shards=shards,
        fault_injector=FaultInjector(plan) if plan is not None else None,
        recovery_every_slots=15,
        ipc_timeout_s=ipc_timeout_s,
        max_respawns=max_respawns,
        degrade_on_failure=degrade,
    )
    return engine.run()


def _engine_observables(result) -> dict:
    config = _chaos_config()
    return {
        "energy_j": result.total_energy_j(),
        "accuracies": tuple(result.accuracy.accuracies()),
        "accuracy_times": tuple(result.accuracy.times()),
        "num_updates": result.num_updates,
        "decisions": dict(result.trace.decisions),
        "queue_history": tuple(result.queue_history),
        "virtual_queue_history": tuple(result.virtual_queue_history),
        "comm_bytes_mb": result.comm_bytes_mb,
        "comm_failures": result.comm_failures,
        "battery_soc": tuple(result.final_battery_soc),
        "user_gaps": tuple(
            tuple(result.trace.user_gap_trace(u)) for u in range(config.num_users)
        ),
    }


@pytest.fixture(scope="module")
def fault_free():
    """Observables of the fault-free 2-shard run every chaos run must match."""
    return _engine_observables(_chaos_run())


def _assert_bitwise(result, fault_free):
    observed = _engine_observables(result)
    mismatched = [key for key in fault_free if observed[key] != fault_free[key]]
    assert not mismatched, f"recovered run diverged on {mismatched}"


class TestSupervisedRecovery:
    def test_shard_sigkill_mid_run_recovers_bitwise(self, fault_free):
        plan = FaultPlan(events=[FaultEvent(kind="kill_shard", at=25, shard=1)])
        _assert_bitwise(_chaos_run(plan), fault_free)

    def test_two_kills_across_shards_recover_bitwise(self, fault_free):
        plan = FaultPlan(events=[
            FaultEvent(kind="kill_shard", at=10, shard=0),
            FaultEvent(kind="kill_shard", at=40, shard=1),
        ])
        _assert_bitwise(_chaos_run(plan), fault_free)

    def test_kill_before_first_recovery_checkpoint(self, fault_free):
        # Slot 1 precedes the first recovery snapshot cadence; the eager
        # pre-loop snapshot must cover it.
        plan = FaultPlan(events=[FaultEvent(kind="kill_shard", at=1, shard=0)])
        _assert_bitwise(_chaos_run(plan), fault_free)

    def test_hung_shard_times_out_and_recovers_bitwise(self, fault_free):
        plan = FaultPlan(events=[FaultEvent(kind="drop_message", at=30, shard=0)])
        _assert_bitwise(_chaos_run(plan, ipc_timeout_s=2.0), fault_free)

    def test_degrade_to_fewer_shards_stays_bitwise(self, fault_free):
        # 3 shards, shard 0 dies, the survivor set reshards to 2: the
        # shard-count-invariance contract makes the degraded layout safe.
        plan = FaultPlan(events=[FaultEvent(kind="kill_shard", at=25, shard=0)])
        _assert_bitwise(_chaos_run(plan, shards=3, degrade=True), fault_free)

    def test_benign_delays_do_not_change_results(self, fault_free):
        plan = FaultPlan(events=[
            FaultEvent(kind="slow_shard", at=20, shard=1, delay_s=0.01, span=3),
            FaultEvent(kind="delay_ipc", at=28, shard=0, delay_s=0.01),
        ])
        _assert_bitwise(_chaos_run(plan), fault_free)

    def test_unsupervised_kill_raises_shard_died(self):
        plan = FaultPlan(events=[FaultEvent(kind="kill_shard", at=25, shard=1)])
        with pytest.raises(ShardDied):
            _chaos_run(plan, max_respawns=0)


def _own_shm_segments():
    """Names of this process's live mailbox segments in /dev/shm."""
    import glob
    import os

    from repro.sim.shmplane import SEGMENT_PREFIX

    return sorted(
        glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_{os.getpid()}_*")
    )


class TestShmHygiene:
    """Every fault path must unlink its shared-memory mailboxes.

    Segment names embed the coordinator pid, so the checks are immune to
    leftovers from unrelated processes.
    """

    def test_sigkill_recovery_leaks_no_segments(self, fault_free):
        plan = FaultPlan(events=[
            FaultEvent(kind="kill_shard", at=10, shard=0),
            FaultEvent(kind="kill_shard", at=40, shard=1),
        ])
        result = _chaos_run(plan)
        assert _own_shm_segments() == []
        _assert_bitwise(result, fault_free)

    def test_degraded_reshard_leaks_no_segments(self, fault_free):
        plan = FaultPlan(events=[FaultEvent(kind="kill_shard", at=25, shard=0)])
        result = _chaos_run(plan, shards=3, degrade=True)
        assert _own_shm_segments() == []
        _assert_bitwise(result, fault_free)

    def test_unsupervised_death_leaks_no_segments(self):
        plan = FaultPlan(events=[FaultEvent(kind="kill_shard", at=25, shard=1)])
        with pytest.raises(ShardDied):
            _chaos_run(plan, max_respawns=0)
        assert _own_shm_segments() == []

    def test_unsupervised_hang_raises_shard_timeout(self):
        plan = FaultPlan(events=[FaultEvent(kind="drop_message", at=25, shard=0)])
        with pytest.raises(ShardTimeout):
            _chaos_run(plan, max_respawns=0, ipc_timeout_s=1.0)


# ---------------------------------------------------------------------------
# checkpoint-store faults, retention, and service self-healing
# ---------------------------------------------------------------------------


def tiny_spec(**overrides) -> RunSpec:
    config = dict(
        num_users=3,
        total_slots=40,
        app_arrival_prob=0.01,
        seed=3,
        num_train_samples=120,
        num_test_samples=60,
        hidden_dims=(4,),
        eval_interval_slots=20,
        trace_interval_slots=10,
        learning_rate=0.05,
    )
    config.update(overrides.pop("config", {}))
    return RunSpec(policy="online", config=config, **overrides)


#: Deterministic RunSummary fields; wall-clock reporting is excluded.
_VOLATILE_SUMMARY_KEYS = ("wall_time_s", "timing_shares", "from_cache")


def _summary(service: ExperimentService, job_id: str) -> dict:
    payload = dict(service.result(job_id))
    for key in _VOLATILE_SUMMARY_KEYS:
        payload.pop(key, None)
    return payload


@pytest.fixture(scope="module")
def clean_summary(tmp_path_factory):
    """The fault-free RunSummary every self-healed job must reproduce."""
    service = ExperimentService(tmp_path_factory.mktemp("clean"), checkpoint_every=10)
    record = service.submit(tiny_spec(), enqueue=False)
    assert service.run_job(record.id).state == "done"
    return _summary(service, record.id)


#: Backoff long enough that its timers never fire inside a test; the tests
#: drive retries synchronously via run_job to stay deterministic.
_MANUAL_RETRY = RetryPolicy(max_attempts=3, base_delay_s=60.0, cap_s=60.0)


class TestServiceSelfHealing:
    def test_corrupt_save_fails_then_retry_resumes_bitwise(self, tmp_path, clean_summary):
        # checkpoint_every=10 → good snapshot at slot 10, corrupted save at
        # slot 20; the retry must resume from slot 10, not from scratch.
        plan = FaultPlan(events=[FaultEvent(kind="corrupt_checkpoint", at=15)])
        service = ExperimentService(
            tmp_path, checkpoint_every=10, retry=_MANUAL_RETRY, fault_plan=plan
        )
        record = service.submit(tiny_spec(), enqueue=False)
        failed = service.run_job(record.id)
        assert failed.state == "failed"
        assert failed.attempts == 1
        assert "CheckpointError" in failed.error

        store = CheckpointStore(service.job_dir(record.id) / "checkpoint")
        assert store.load().slot == 10  # the corrupt save never published

        healed = service.run_job(record.id)
        assert healed.state == "done"
        assert _summary(service, record.id) == clean_summary
        service.shutdown()

    def test_disk_full_fails_without_publishing_then_recovers(self, tmp_path, clean_summary):
        plan = FaultPlan(events=[FaultEvent(kind="disk_full", at=1)])
        service = ExperimentService(
            tmp_path, checkpoint_every=10, retry=_MANUAL_RETRY, fault_plan=plan
        )
        record = service.submit(tiny_spec(), enqueue=False)
        failed = service.run_job(record.id)
        assert failed.state == "failed"
        assert "disk_full" in failed.error
        # ENOSPC hit before the manifest flip: no snapshot was published.
        store = CheckpointStore(service.job_dir(record.id) / "checkpoint")
        assert not store.exists()

        assert service.run_job(record.id).state == "done"
        assert _summary(service, record.id) == clean_summary
        service.shutdown()

    def test_poison_job_quarantines_and_resume_clears_it(self, tmp_path, clean_summary):
        # Three distinct corrupt events: one per save attempt.  A two-attempt
        # budget quarantines after the second failure; resume() re-arms the
        # budget, eats the third event, and the final retry completes.
        plan = FaultPlan(events=[
            FaultEvent(kind="corrupt_checkpoint", at=1),
            FaultEvent(kind="corrupt_checkpoint", at=2),
            FaultEvent(kind="corrupt_checkpoint", at=3),
        ])
        retry = RetryPolicy(max_attempts=2, base_delay_s=60.0, cap_s=60.0)
        service = ExperimentService(
            tmp_path, checkpoint_every=10, retry=retry, fault_plan=plan
        )
        record = service.submit(tiny_spec(), enqueue=False)
        assert service.run_job(record.id).state == "failed"
        quarantined = service.run_job(record.id)
        assert quarantined.state == "quarantined"
        assert quarantined.attempts == 2
        # A quarantined job refuses to execute until explicitly resumed.
        assert service.run_job(record.id).state == "quarantined"

        resumed = service.resume(record.id)
        assert resumed.state == "queued" and resumed.attempts == 0
        assert service.run_job(record.id).state == "failed"  # third corrupt event
        assert service.run_job(record.id).state == "done"
        assert _summary(service, record.id) == clean_summary
        service.shutdown()

    def test_async_retry_timer_heals_without_intervention(self, tmp_path, clean_summary):
        plan = FaultPlan(events=[FaultEvent(kind="corrupt_checkpoint", at=15)])
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.05, cap_s=0.2)
        service = ExperimentService(
            tmp_path, workers=1, checkpoint_every=10, retry=retry, fault_plan=plan
        )
        record = service.submit(tiny_spec())
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            state = service.get(record.id).state
            if state in ("done", "quarantined"):
                break
            time.sleep(0.05)
        final = service.get(record.id)
        assert final.state == "done"
        assert final.attempts == 1  # exactly one failure, healed by the timer
        assert _summary(service, record.id) == clean_summary
        health = service.health()
        assert health["jobs"].get("done") == 1
        service.shutdown()


class TestRetention:
    def test_keep_last_plus_milestones(self, tmp_path):
        service = ExperimentService(
            tmp_path, checkpoint_every=10, keep_last=2, keep_every_slots=20
        )
        record = service.submit(tiny_spec(), enqueue=False)
        assert service.run_job(record.id).state == "done"
        store = CheckpointStore(
            service.job_dir(record.id) / "checkpoint",
            keep_last=2,
            keep_every_slots=20,
        )
        retained = store.retained_slots()
        # Saves land at slots 10/20/30 (the final slot completes the run
        # without another periodic save): the newest two survive keep_last
        # and the 20th-slot milestone survives keep_every_slots.
        assert retained == [20, 30]
        assert store.load().slot == 30
        # The pruned slot-10 snapshot is gone from disk, not just the manifest.
        names = {entry.name for entry in store.root.iterdir()}
        assert len([n for n in names if n != "manifest.json"]) == 2

    def test_default_keeps_only_the_latest(self, tmp_path):
        service = ExperimentService(tmp_path, checkpoint_every=10)
        record = service.submit(tiny_spec(), enqueue=False)
        assert service.run_job(record.id).state == "done"
        store = CheckpointStore(service.job_dir(record.id) / "checkpoint")
        assert store.retained_slots() == [30]

    def test_on_disk_corruption_is_detected_at_load(self, tmp_path):
        service = ExperimentService(tmp_path, checkpoint_every=10)
        record = service.submit(tiny_spec(), enqueue=False)
        assert service.run_job(record.id).state == "done"
        store = CheckpointStore(service.job_dir(record.id) / "checkpoint")
        snapshot = store.root / store._read_manifest()["latest"]
        payload = (snapshot / "coordinator.pkl").read_bytes()
        (snapshot / "coordinator.pkl").write_bytes(b"\x00" * 16 + payload[16:])
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load()


# ---------------------------------------------------------------------------
# HTTP client
# ---------------------------------------------------------------------------


class TestServiceClient:
    def test_url_parsing(self):
        client = ServiceClient("example.test:9000")
        assert (client.host, client.port) == ("example.test", 9000)
        assert ServiceClient("http://example.test").port == 8765
        with pytest.raises(ValueError, match="http only"):
            ServiceClient("https://example.test")
        with pytest.raises(ValueError, match="no host"):
            ServiceClient("http://")

    def test_dead_server_raises_service_unavailable(self):
        client = ServiceClient(
            "127.0.0.1:9",  # discard port: nothing listens there
            connect_timeout_s=0.5,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, cap_s=0.01),
        )
        with pytest.raises(ServiceUnavailable, match="after 2 attempt"):
            client.health()
        # Mutating requests must not retry: one attempt, then unavailable.
        with pytest.raises(ServiceUnavailable, match="after 1 attempt"):
            client.submit({"spec": {"policy": "online"}})

    def test_live_round_trip(self, tmp_path):
        api = ServiceAPI(ExperimentService(tmp_path, workers=1), port=0)
        api.start()
        try:
            client = ServiceClient(f"127.0.0.1:{api.port}")
            assert client.health()["ok"] is True

            spec = tiny_spec()
            submitted = client.submit(
                {"spec": {"policy": spec.policy, "config": spec.config}}
            )
            job_id = submitted["id"]
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if client.get_job(job_id)["state"] == "done":
                    break
                time.sleep(0.05)
            record = client.get_job(job_id)
            assert record["state"] == "done"
            assert record["result"]["num_updates"] >= 0

            assert [job["id"] for job in client.list_jobs()] == [job_id]
            telemetry = client.telemetry(job_id)
            assert telemetry["slot"] == 40

            with pytest.raises(ServiceError, match="404"):
                client.get_job("deadbeef")
        finally:
            api.stop()
