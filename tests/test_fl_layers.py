"""Tests for the NumPy layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.fl.layers import (
    Conv2D,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
    Tanh,
)


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f()
        flat[i] = original - eps
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_forward_matches_matmul(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.params["w"] + layer.params["b"]
        assert np.allclose(layer.forward(x), expected)

    def test_backward_input_gradient_matches_numerical(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        loss = SoftmaxCrossEntropy()
        labels = np.array([0, 2])

        def compute():
            return loss.forward(layer.forward(x), labels)

        compute()
        grad_analytic = layer.backward(loss.backward())
        grad_numeric = numerical_gradient(compute, x)
        assert np.allclose(grad_analytic, grad_numeric, atol=1e-5)

    def test_backward_weight_gradient_matches_numerical(self, rng):
        layer = Linear(3, 3, rng=rng)
        x = rng.normal(size=(4, 3))
        loss = SoftmaxCrossEntropy()
        labels = np.array([0, 1, 2, 1])

        def compute():
            return loss.forward(layer.forward(x), labels)

        compute()
        layer.backward(loss.backward())
        grad_numeric = numerical_gradient(compute, layer.params["w"])
        assert np.allclose(layer.grads["w"], grad_numeric, atol=1e-5)
        grad_numeric_b = numerical_gradient(compute, layer.params["b"])
        assert np.allclose(layer.grads["b"], grad_numeric_b, atol=1e-5)

    def test_shape_validation(self, rng):
        layer = Linear(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 7)))
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_backward_before_forward(self, rng):
        layer = Linear(4, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 3)))


class TestActivations:
    def test_relu_masks_negative(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0, 0.0]]))
        assert np.allclose(out, [[0.0, 2.0, 0.0]])
        grad = layer.backward(np.ones((1, 3)))
        assert np.allclose(grad, [[0.0, 1.0, 0.0]])

    def test_tanh_gradient(self):
        layer = Tanh()
        x = np.array([[0.3, -0.7]])
        layer.forward(x)
        grad = layer.backward(np.ones((1, 2)))
        assert np.allclose(grad, 1.0 - np.tanh(x) ** 2)

    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_eval_mode_is_identity(self, rng):
        layer = Dropout(rate=0.5, rng=rng)
        layer.train_mode(False)
        x = rng.normal(size=(4, 6))
        assert np.allclose(layer.forward(x), x)

    def test_dropout_training_preserves_expectation(self, rng):
        layer = Dropout(rate=0.5, rng=np.random.default_rng(0))
        x = np.ones((2000, 10))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)


class TestConvAndPool:
    def test_conv_output_shape(self, rng):
        layer = Conv2D(3, 6, kernel_size=5, rng=rng)
        out = layer.forward(rng.normal(size=(2, 3, 12, 12)))
        assert out.shape == (2, 6, 8, 8)

    def test_conv_gradient_matches_numerical(self, rng):
        layer = Conv2D(1, 2, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        loss = SoftmaxCrossEntropy()
        labels = np.array([1])
        flat = Flatten()

        def compute():
            return loss.forward(flat.forward(layer.forward(x))[:, :10], labels)

        compute()
        grad_logits = loss.backward()
        padded = np.zeros((1, flat.forward(layer.forward(x)).shape[1]))
        padded[:, :10] = grad_logits
        grad_analytic = layer.backward(flat.backward(padded))
        grad_numeric = numerical_gradient(compute, x)
        assert np.allclose(grad_analytic, grad_numeric, atol=1e-4)

    def test_conv_rejects_wrong_channels(self, rng):
        layer = Conv2D(3, 4, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 1, 8, 8)))

    def test_maxpool_selects_maximum(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert np.allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == pytest.approx(4.0)
        assert grad[0, 0, 1, 1] == pytest.approx(1.0)
        assert grad[0, 0, 0, 0] == pytest.approx(0.0)

    def test_maxpool_requires_divisible_dims(self):
        layer = MaxPool2D(2)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 5, 5)))


class TestSoftmaxCrossEntropy:
    def test_loss_of_uniform_logits(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 10)), np.array([0, 1, 2, 3]))
        assert value == pytest.approx(np.log(10.0))

    def test_perfect_prediction_has_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        assert loss.forward(logits, np.array([1, 2])) < 1e-6

    def test_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 3, 4])

        def compute():
            return loss.forward(logits, labels)

        compute()
        grad_numeric = numerical_gradient(compute, logits)
        assert np.allclose(loss.backward(), grad_numeric, atol=1e-6)

    def test_shape_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3, 1)), np.array([0, 1]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0]))

    def test_predictions(self):
        logits = np.array([[0.1, 2.0, -1.0], [3.0, 0.0, 0.0]])
        assert SoftmaxCrossEntropy.predictions(logits).tolist() == [1, 0]
