"""Tests for the Sequential container, model builders and the synthetic dataset."""

import numpy as np
import pytest

from repro.fl.dataset import (
    DataPartition,
    SyntheticCifar10,
    partition_dirichlet,
    partition_iid,
)
from repro.fl.model import Sequential, build_lenet5, build_mlp


class TestSequential:
    def test_mlp_forward_shape(self, rng):
        model = build_mlp(input_dim=16, hidden_dims=(8,), num_classes=4, seed=0)
        logits = model.forward(rng.normal(size=(5, 16)))
        assert logits.shape == (5, 4)

    def test_flat_params_round_trip(self, rng):
        model = build_mlp(input_dim=10, hidden_dims=(6,), num_classes=3, seed=1)
        flat = model.get_flat_params()
        assert flat.shape == (model.num_parameters(),)
        perturbed = flat + 0.5
        model.set_flat_params(perturbed)
        assert np.allclose(model.get_flat_params(), perturbed)

    def test_set_flat_params_wrong_length(self):
        model = build_mlp(input_dim=10, hidden_dims=(6,), num_classes=3)
        with pytest.raises(ValueError):
            model.set_flat_params(np.zeros(3))

    def test_flat_params_are_copies(self):
        model = build_mlp(input_dim=4, hidden_dims=(4,), num_classes=2)
        flat = model.get_flat_params()
        flat[:] = 0.0
        assert not np.allclose(model.get_flat_params(), 0.0)

    def test_train_step_populates_gradients(self, rng):
        model = build_mlp(input_dim=8, hidden_dims=(6,), num_classes=3, seed=2)
        x = rng.normal(size=(10, 8))
        y = rng.integers(0, 3, size=10)
        loss = model.train_step_gradients(x, y)
        assert loss > 0.0
        grads = model.get_flat_grads()
        assert grads.shape == model.get_flat_params().shape
        assert np.abs(grads).sum() > 0.0

    def test_loss_decreases_with_training(self, rng):
        model = build_mlp(input_dim=8, hidden_dims=(16,), num_classes=3, seed=3)
        x = rng.normal(size=(60, 8))
        y = rng.integers(0, 3, size=60)
        first_loss = model.train_step_gradients(x, y)
        from repro.fl.optimizer import MomentumSGD

        optimizer = MomentumSGD(learning_rate=0.1, momentum=0.9)
        for _ in range(60):
            model.train_step_gradients(x, y)
            optimizer.step(model)
        final_loss = model.loss(x, y)
        assert final_loss < first_loss * 0.7

    def test_predict_returns_classes(self, rng):
        model = build_mlp(input_dim=8, hidden_dims=(6,), num_classes=5, seed=4)
        predictions = model.predict(rng.normal(size=(7, 8)))
        assert predictions.shape == (7,)
        assert set(predictions.tolist()) <= set(range(5))

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_lenet5_shapes(self, rng):
        model = build_lenet5(in_channels=3, image_size=32, num_classes=10, seed=0)
        logits = model.forward(rng.normal(size=(2, 3, 32, 32)))
        assert logits.shape == (2, 10)
        assert model.num_parameters() > 50_000

    def test_lenet5_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            build_lenet5(image_size=8)


class TestSyntheticDataset:
    def test_shapes_and_labels(self):
        dataset = SyntheticCifar10(num_train=200, num_test=50, seed=0)
        x_train, y_train = dataset.train_set()
        x_test, y_test = dataset.test_set()
        assert x_train.shape == (200, dataset.feature_dim)
        assert x_test.shape == (50, dataset.feature_dim)
        assert y_train.min() >= 0 and y_train.max() < 10
        assert y_test.dtype == np.int64

    def test_reproducible_per_seed(self):
        a = SyntheticCifar10(num_train=100, num_test=20, seed=5)
        b = SyntheticCifar10(num_train=100, num_test=20, seed=5)
        assert np.allclose(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = SyntheticCifar10(num_train=100, num_test=20, seed=1)
        b = SyntheticCifar10(num_train=100, num_test=20, seed=2)
        assert not np.allclose(a.x_train, b.x_train)

    def test_image_shape_option(self):
        dataset = SyntheticCifar10(
            num_train=20, num_test=10, image_shape=(3, 32, 32), seed=0
        )
        assert dataset.x_train.shape == (20, 3, 32, 32)
        assert dataset.input_dim() == 3 * 32 * 32

    def test_easier_task_is_more_separable(self):
        """Larger class separation should give a linear probe higher accuracy."""

        def linear_probe_accuracy(dataset):
            x, y = dataset.train_set()
            means = np.stack([x[y == c].mean(axis=0) for c in range(10)])
            xt, yt = dataset.test_set()
            distances = ((xt[:, None, :] - means[None, :, :]) ** 2).sum(axis=2)
            return float((distances.argmin(axis=1) == yt).mean())

        easy = SyntheticCifar10(num_train=2000, num_test=500, class_separation=3.0,
                                clusters_per_class=1, label_noise=0.0, seed=0)
        hard = SyntheticCifar10(num_train=2000, num_test=500, class_separation=0.8,
                                clusters_per_class=6, label_noise=0.1, seed=0)
        assert linear_probe_accuracy(easy) > linear_probe_accuracy(hard) + 0.2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticCifar10(num_train=0)
        with pytest.raises(ValueError):
            SyntheticCifar10(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticCifar10(label_noise=1.0)
        with pytest.raises(ValueError):
            SyntheticCifar10(clusters_per_class=0)


class TestPartitioning:
    def test_iid_partition_covers_everything(self, rng):
        dataset = SyntheticCifar10(num_train=250, num_test=20, seed=0)
        parts = partition_iid(dataset.x_train, dataset.y_train, 25, rng)
        assert len(parts) == 25
        assert sum(len(p) for p in parts) == 250
        assert all(len(p) == 10 for p in parts)

    def test_iid_partition_requires_enough_samples(self, rng):
        dataset = SyntheticCifar10(num_train=10, num_test=5, seed=0)
        with pytest.raises(ValueError):
            partition_iid(dataset.x_train, dataset.y_train, 20, rng)

    def test_dirichlet_partition_covers_everything(self, rng):
        dataset = SyntheticCifar10(num_train=400, num_test=20, seed=0)
        parts = partition_dirichlet(dataset.x_train, dataset.y_train, 10, rng, alpha=0.5)
        assert sum(len(p) for p in parts) == 400
        assert all(len(p) >= 1 for p in parts)

    def test_dirichlet_small_alpha_is_more_skewed(self, rng):
        dataset = SyntheticCifar10(num_train=2000, num_test=20, seed=0)

        def mean_skew(parts):
            skews = []
            for part in parts:
                dist = part.label_distribution(10)
                dist = dist / dist.sum()
                skews.append(dist.max())
            return float(np.mean(skews))

        skewed = partition_dirichlet(
            dataset.x_train, dataset.y_train, 10, np.random.default_rng(0), alpha=0.1
        )
        uniform = partition_dirichlet(
            dataset.x_train, dataset.y_train, 10, np.random.default_rng(0), alpha=100.0
        )
        assert mean_skew(skewed) > mean_skew(uniform)

    def test_partition_batches(self, rng):
        dataset = SyntheticCifar10(num_train=100, num_test=20, seed=0)
        part = partition_iid(dataset.x_train, dataset.y_train, 5, rng)[0]
        batches = part.batches(8, rng=rng)
        assert sum(x.shape[0] for x, _ in batches) == len(part)
        assert all(x.shape[0] <= 8 for x, _ in batches)

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            DataPartition(user_id=0, x=np.zeros((3, 2)), y=np.zeros(2, dtype=int))
        part = DataPartition(user_id=0, x=np.zeros((4, 2)), y=np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            part.batches(0)

    def test_invalid_dirichlet_parameters(self, rng):
        dataset = SyntheticCifar10(num_train=100, num_test=20, seed=0)
        with pytest.raises(ValueError):
            partition_dirichlet(dataset.x_train, dataset.y_train, 0, rng)
        with pytest.raises(ValueError):
            partition_dirichlet(dataset.x_train, dataset.y_train, 5, rng, alpha=0.0)
