"""Tests for the optimizer, FL client, parameter server and metrics."""

import numpy as np
import pytest

from repro.fl.client import FLClient, LocalUpdate
from repro.fl.dataset import SyntheticCifar10, partition_iid
from repro.fl.metrics import AccuracyTracker, evaluate_model, time_to_accuracy
from repro.fl.model import build_mlp
from repro.fl.optimizer import MomentumSGD
from repro.fl.server import AsyncUpdateRule, ParameterServer


@pytest.fixture()
def small_dataset():
    return SyntheticCifar10(num_train=200, num_test=80, feature_dim=16,
                            class_separation=2.5, clusters_per_class=1,
                            label_noise=0.0, seed=0)


@pytest.fixture()
def client(small_dataset, rng):
    parts = partition_iid(small_dataset.x_train, small_dataset.y_train, 4, rng)
    model = build_mlp(input_dim=16, hidden_dims=(16,), num_classes=10, seed=0)
    return FLClient(user_id=0, partition=parts[0], model=model,
                    learning_rate=0.05, momentum=0.9, batch_size=10, seed=0)


class TestMomentumSGD:
    def test_matches_eq1_closed_form(self):
        """One step must equal v = beta*v + (1-beta)*g, theta -= eta*v."""
        optimizer = MomentumSGD(learning_rate=0.1, momentum=0.5)
        params = np.array([1.0, -2.0])
        grads = np.array([0.5, 0.5])
        updated = optimizer.apply_to_vector(params, grads)
        expected_v = 0.5 * np.zeros(2) + 0.5 * grads
        assert np.allclose(updated, params - 0.1 * expected_v)
        updated2 = optimizer.apply_to_vector(updated, grads)
        expected_v2 = 0.5 * expected_v + 0.5 * grads
        assert np.allclose(updated2, updated - 0.1 * expected_v2)

    def test_zero_momentum_is_plain_sgd(self):
        optimizer = MomentumSGD(learning_rate=0.2, momentum=0.0)
        params = np.array([1.0])
        grads = np.array([2.0])
        assert np.allclose(optimizer.apply_to_vector(params, grads), [0.6])

    def test_velocity_norm_tracks_state(self):
        optimizer = MomentumSGD(learning_rate=0.1, momentum=0.9)
        assert optimizer.velocity_norm() == 0.0
        optimizer.apply_to_vector(np.zeros(3), np.ones(3))
        assert optimizer.velocity_norm() > 0.0
        optimizer.reset()
        assert optimizer.velocity is None

    def test_load_velocity_copies(self):
        optimizer = MomentumSGD()
        velocity = np.ones(4)
        optimizer.load_velocity(velocity)
        velocity[:] = 5.0
        assert np.allclose(optimizer.velocity, 1.0)

    def test_weight_decay_shrinks_params(self):
        plain = MomentumSGD(learning_rate=0.1, momentum=0.0)
        decayed = MomentumSGD(learning_rate=0.1, momentum=0.0, weight_decay=0.1)
        params = np.array([10.0])
        grads = np.array([0.0])
        assert decayed.apply_to_vector(params, grads)[0] < plain.apply_to_vector(params, grads)[0]

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            MomentumSGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            MomentumSGD(momentum=1.0)
        with pytest.raises(ValueError):
            MomentumSGD(weight_decay=-0.1)

    def test_step_updates_model_params(self, rng):
        model = build_mlp(input_dim=6, hidden_dims=(4,), num_classes=3, seed=0)
        optimizer = MomentumSGD(learning_rate=0.1)
        before = model.get_flat_params()
        model.train_step_gradients(rng.normal(size=(8, 6)), rng.integers(0, 3, size=8))
        optimizer.step(model)
        assert not np.allclose(before, model.get_flat_params())


class TestFLClient:
    def test_local_train_returns_update(self, client):
        base = client.model.get_flat_params()
        update = client.local_train(base, base_version=3)
        assert isinstance(update, LocalUpdate)
        assert update.user_id == 0
        assert update.base_version == 3
        assert update.num_samples == len(client.partition)
        assert update.num_batches > 0
        assert update.params.shape == base.shape
        assert np.allclose(update.delta, update.params - base)

    def test_momentum_persists_across_rounds(self, client):
        base = client.model.get_flat_params()
        assert client.momentum_norm() == 0.0
        client.local_train(base, 0)
        norm_after_first = client.momentum_norm()
        assert norm_after_first > 0.0
        assert client.rounds_completed == 1

    def test_training_starts_from_supplied_global(self, client):
        global_params = np.zeros_like(client.model.get_flat_params())
        update = client.local_train(global_params, 0)
        # The update must be a perturbation of the supplied global model, not
        # of whatever the client model held before.
        assert np.linalg.norm(update.params) < 10.0

    def test_local_accuracy_improves(self, client):
        base = client.model.get_flat_params()
        params = base
        for _ in range(20):
            update = client.local_train(params, 0)
            params = update.params
        assert client.evaluate_local() > 0.5

    def test_invalid_construction(self, small_dataset, rng):
        parts = partition_iid(small_dataset.x_train, small_dataset.y_train, 2, rng)
        model = build_mlp(input_dim=16, hidden_dims=(4,), num_classes=10)
        with pytest.raises(ValueError):
            FLClient(0, parts[0], model, batch_size=0)
        with pytest.raises(ValueError):
            FLClient(0, parts[0], model, local_epochs=0)


class TestParameterServer:
    def _update(self, user, base, params, base_version=0):
        return LocalUpdate(
            user_id=user,
            params=params,
            delta=params - base,
            base_version=base_version,
            num_samples=10,
            train_loss=1.0,
            momentum_norm=0.5,
            num_batches=5,
        )

    def test_download_records_version(self):
        server = ParameterServer(np.zeros(4))
        server.download(3)
        assert server.downloaded_version(3) == 0
        assert server.downloaded_version(9) is None

    def test_accumulate_rule_applies_delta(self):
        base = np.zeros(4)
        server = ParameterServer(base, async_rule=AsyncUpdateRule.ACCUMULATE)
        server.async_update(self._update(0, base, np.ones(4)), time_s=1.0)
        server.async_update(self._update(1, base, np.full(4, 2.0)), time_s=2.0)
        assert np.allclose(server.global_params(), 3.0)
        assert server.version == 2

    def test_replace_rule_overwrites(self):
        base = np.zeros(4)
        server = ParameterServer(base, async_rule=AsyncUpdateRule.REPLACE)
        server.async_update(self._update(0, base, np.ones(4)), time_s=1.0)
        server.async_update(self._update(1, base, np.full(4, 2.0)), time_s=2.0)
        assert np.allclose(server.global_params(), 2.0)

    def test_mixing_rule(self):
        base = np.zeros(2)
        server = ParameterServer(base, async_rule=AsyncUpdateRule.MIXING, mixing_alpha=0.5)
        server.async_update(self._update(0, base, np.full(2, 4.0)), time_s=0.0)
        assert np.allclose(server.global_params(), 2.0)

    def test_staleness_weighted_rule_downweights_stale_updates(self):
        base = np.zeros(2)
        fresh = ParameterServer(base, async_rule=AsyncUpdateRule.STALENESS_WEIGHTED, mixing_alpha=0.8)
        fresh.async_update(self._update(0, base, np.full(2, 1.0), base_version=0), time_s=0.0)
        value_fresh = fresh.global_params()[0]

        stale = ParameterServer(base, async_rule=AsyncUpdateRule.STALENESS_WEIGHTED, mixing_alpha=0.8)
        # Simulate two earlier updates so the next one has lag 2.
        stale.async_update(self._update(1, base, base.copy(), base_version=0), time_s=0.0)
        stale.async_update(self._update(2, base, base.copy(), base_version=0), time_s=0.0)
        stale.async_update(self._update(0, base, np.full(2, 1.0), base_version=0), time_s=1.0)
        assert stale.global_params()[0] < value_fresh

    def test_lag_computation(self):
        server = ParameterServer(np.zeros(2))
        base = np.zeros(2)
        assert server.lag_of(0) == 0
        server.async_update(self._update(0, base, np.ones(2)), time_s=0.0)
        server.async_update(self._update(1, base, np.ones(2)), time_s=0.0)
        assert server.lag_of(0) == 2
        with pytest.raises(ValueError):
            server.lag_of(5)

    def test_sync_round_weighted_average(self):
        base = np.zeros(2)
        server = ParameterServer(base)
        updates = [
            LocalUpdate(0, delta=np.full(2, 2.0), params=np.full(2, 2.0), base_version=0,
                        num_samples=30, train_loss=1.0, momentum_norm=0.0, num_batches=1),
            LocalUpdate(1, delta=np.full(2, 8.0), params=np.full(2, 8.0), base_version=0,
                        num_samples=10, train_loss=1.0, momentum_norm=0.0, num_batches=1),
        ]
        records = server.sync_round(updates, time_s=5.0)
        assert np.allclose(server.global_params(), 3.5)
        assert server.version == 2
        assert all(r.sync_round for r in records)

    def test_sync_round_requires_updates(self):
        server = ParameterServer(np.zeros(2))
        with pytest.raises(ValueError):
            server.sync_round([], time_s=0.0)

    def test_inflight_lag_estimation(self):
        server = ParameterServer(np.zeros(2))
        server.register_inflight(1, expected_finish_s=50.0)
        server.register_inflight(2, expected_finish_s=300.0)
        server.register_inflight(3, expected_finish_s=120.0)
        # A job by user 0 lasting 200 s should see users 1 and 3 finish first.
        assert server.estimate_lag(0, now_s=0.0, duration_s=200.0) == 2
        # The requesting user's own job never counts.
        assert server.estimate_lag(1, now_s=0.0, duration_s=200.0) == 1
        server.unregister_inflight(1)
        assert server.estimate_lag(0, now_s=0.0, duration_s=200.0) == 1
        with pytest.raises(ValueError):
            server.estimate_lag(0, now_s=0.0, duration_s=0.0)

    def test_update_log_histories(self):
        base = np.zeros(2)
        server = ParameterServer(base)
        server.async_update(self._update(0, base, np.ones(2)), time_s=1.0, gradient_gap=0.7)
        assert server.lag_history() == [0]
        assert server.gap_history() == [0.7]

    def test_shape_and_alpha_validation(self):
        with pytest.raises(ValueError):
            ParameterServer(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            ParameterServer(np.zeros(2), mixing_alpha=0.0)
        server = ParameterServer(np.zeros(2))
        with pytest.raises(ValueError):
            server.async_update(self._update(0, np.zeros(3), np.ones(3)), time_s=0.0)


class TestMetrics:
    def test_evaluate_model_perfect_separation(self, small_dataset):
        model = build_mlp(input_dim=16, hidden_dims=(32,), num_classes=10, seed=0)
        optimizer = MomentumSGD(learning_rate=0.1, momentum=0.9)
        x, y = small_dataset.train_set()
        for _ in range(80):
            model.train_step_gradients(x, y)
            optimizer.step(model)
        accuracy, loss = evaluate_model(model, *small_dataset.test_set())
        assert accuracy > 0.8
        assert loss < 1.5

    def test_evaluate_model_empty_set_rejected(self):
        model = build_mlp(input_dim=4, hidden_dims=(4,), num_classes=2)
        with pytest.raises(ValueError):
            evaluate_model(model, np.zeros((0, 4)), np.zeros(0, dtype=int))

    def test_tracker_records_and_queries(self):
        tracker = AccuracyTracker()
        tracker.record(0.0, 0.1, 2.3, 0)
        tracker.record(100.0, 0.4, 1.8, 10)
        tracker.record(200.0, 0.55, 1.5, 20)
        assert tracker.final_accuracy() == pytest.approx(0.55)
        assert tracker.best_accuracy() == pytest.approx(0.55)
        assert tracker.time_to_accuracy(0.4) == pytest.approx(100.0)
        assert tracker.time_to_accuracy(0.9) is None

    def test_tracker_rejects_time_regression(self):
        tracker = AccuracyTracker()
        tracker.record(10.0, 0.2, 2.0, 1)
        with pytest.raises(ValueError):
            tracker.record(5.0, 0.3, 1.9, 2)

    def test_time_to_accuracy_standalone(self):
        assert time_to_accuracy([0, 10, 20], [0.1, 0.5, 0.6], 0.5) == 10.0
        assert time_to_accuracy([0, 10], [0.1, 0.2], 0.5) is None
        with pytest.raises(ValueError):
            time_to_accuracy([0, 10], [0.1], 0.5)

    def test_empty_tracker_defaults(self):
        tracker = AccuracyTracker()
        assert tracker.final_accuracy() == 0.0
        assert tracker.best_accuracy() == 0.0
