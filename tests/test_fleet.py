"""Equivalence of the fleet backend (both modes) and the per-user loop engine.

The contract (see :mod:`repro.sim.fleet`) is *bitwise* identity, not
approximate agreement: with the same configuration and seed, every
execution mode must produce the same decisions, the same Eq. (10) energy
traces, the same Eq. (12) gap traces, the same queue backlogs and the same
applied updates — every floating-point value compared with ``==``.  Three
modes are compared:

* ``loop`` — the per-user reference loop (the executable specification);
* ``fleet`` with ``fast_forward=False`` — the vectorized slot-by-slot path;
* ``fleet`` with ``fast_forward=True`` — the event-horizon fast-forward
  path, which advances whole quiet regions in fused kernels.

The comparison configs keep the paper's 25-user fleet but shrink the
horizon and the synthetic dataset so the whole module runs in seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.offline import OfflinePolicy
from repro.core.online import OnlinePolicy
from repro.core.policies import ImmediatePolicy, SyncPolicy
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.fleet import FleetEnergyAccountant


def _paper_fleet_config(**overrides) -> SimulationConfig:
    """25 users (the Section VII.B fleet size), short horizon, small data."""
    base = dict(
        num_users=25,
        total_slots=400,
        app_arrival_prob=0.01,
        seed=0,
        num_train_samples=600,
        num_test_samples=300,
        eval_interval_slots=200,
        trace_interval_slots=10,
    )
    base.update(overrides)
    return SimulationConfig(**base)


#: The three execution modes of the equivalence matrix: (name, backend, ff).
EXECUTION_MODES = (
    ("loop", "loop", False),
    ("fleet", "fleet", False),
    ("fast-forward", "fleet", True),
)


def _run_matrix(config: SimulationConfig, make_policy):
    """Run the same workload under every execution mode with fresh policies.

    Each engine builds its own dataset from the config seed — identical
    data, so the comparison is still run-for-run exact.
    """
    results = {}
    policies = {}
    for name, backend, fast_forward in EXECUTION_MODES:
        policy = make_policy()
        engine = SimulationEngine(
            config, policy, backend=backend, fast_forward=fast_forward
        )
        results[name] = engine.run()
        policies[name] = policy
    return results, policies


def _run_both(config: SimulationConfig, make_policy):
    """Backward-compatible helper: loop and fast-forward-fleet results."""
    results, policies = _run_matrix(config, make_policy)
    return (
        results["loop"],
        results["fast-forward"],
        policies["loop"],
        policies["fast-forward"],
    )


def _assert_matrix_bitwise_equal(config, results):
    """Every pair of execution modes must match on every observable trace."""
    reference = results["loop"]
    for name, result in results.items():
        if name != "loop":
            _assert_bitwise_equal(config, reference, result)


def _assert_bitwise_equal(config, loop, fleet):
    """Every observable trace of the two runs must match exactly."""
    # Decisions and job mix.
    assert loop.trace.decisions == fleet.trace.decisions
    assert loop.trace.corun_jobs == fleet.trace.corun_jobs
    assert loop.trace.background_jobs == fleet.trace.background_jobs
    # Eq. (10) energy: totals, per-user breakdowns and the per-slot series.
    assert loop.total_energy_j() == fleet.total_energy_j()
    assert loop.accountant.per_slot_totals() == fleet.accountant.per_slot_totals()
    assert loop.accountant.training_related_j() == fleet.accountant.training_related_j()
    for user in range(config.num_users):
        assert loop.accountant.user_breakdown(user) == fleet.accountant.user_breakdown(user)
    # Slot-sampled series (energy, queues, gap sum) and applied updates.
    assert loop.trace.slot_samples == fleet.trace.slot_samples
    # The queue backlogs inside the sampled SlotSamples must agree
    # slot-for-slot (not merely on aggregate statistics).
    assert [s.queue_length for s in loop.trace.slot_samples] == [
        s.queue_length for s in fleet.trace.slot_samples
    ]
    assert [s.virtual_queue_length for s in loop.trace.slot_samples] == [
        s.virtual_queue_length for s in fleet.trace.slot_samples
    ]
    assert loop.trace.update_samples == fleet.trace.update_samples
    # Eq. (12) per-user gap traces.
    for user in range(config.num_users):
        assert loop.trace.user_gap_trace(user) == fleet.trace.user_gap_trace(user)
    # Queue backlogs, model updates, accuracy curve, batteries, comms.
    assert loop.queue_history == fleet.queue_history
    assert loop.virtual_queue_history == fleet.virtual_queue_history
    assert loop.num_updates == fleet.num_updates
    assert loop.decision_evaluations == fleet.decision_evaluations
    assert loop.accuracy.accuracies() == fleet.accuracy.accuracies()
    assert loop.accuracy.times() == fleet.accuracy.times()
    assert loop.final_battery_soc == fleet.final_battery_soc
    assert loop.comm_bytes_mb == fleet.comm_bytes_mb
    assert loop.comm_failures == fleet.comm_failures
    assert loop.device_names == fleet.device_names


class TestBackendEquivalence:
    def test_online_policy_identical(self):
        """The headline case: the Lyapunov scheduler at the paper's 25 users."""
        config = _paper_fleet_config()
        results, policies = _run_matrix(
            config, lambda: OnlinePolicy(v=4000.0, staleness_bound=500.0)
        )
        _assert_matrix_bitwise_equal(config, results)
        # The per-decision log (slot, user, decision) matches entry for entry,
        # including the same-slot lag coupling between scheduled users.
        reference = policies["loop"]
        for name, policy in policies.items():
            assert policy.decision_log == reference.decision_log, name
            assert policy.messages_to_server == reference.messages_to_server, name
            assert policy.messages_to_users == reference.messages_to_users, name

    @pytest.mark.parametrize("v", [0.0, 2000.0, 100000.0])
    def test_online_policy_identical_across_v(self, v):
        """Low V schedules eagerly (heavy same-slot coupling), high V idles."""
        config = _paper_fleet_config(total_slots=250, seed=1)
        results, policies = _run_matrix(
            config, lambda: OnlinePolicy(v=v, staleness_bound=500.0)
        )
        _assert_matrix_bitwise_equal(config, results)
        for name, policy in policies.items():
            assert policy.decision_log == policies["loop"].decision_log, name

    def test_immediate_policy_identical(self):
        config = _paper_fleet_config(seed=2, total_slots=300)
        results, _ = _run_matrix(config, ImmediatePolicy)
        _assert_matrix_bitwise_equal(config, results)

    def test_sync_policy_identical(self):
        config = _paper_fleet_config(seed=3, total_slots=300)
        results, _ = _run_matrix(config, SyncPolicy)
        _assert_matrix_bitwise_equal(config, results)

    def test_offline_policy_identical_via_fallback(self):
        """The knapsack planner has no batched rule; the generic per-user
        fallback of ``decide_all`` must still reproduce the loop exactly."""
        config = _paper_fleet_config(seed=4, total_slots=300)
        results, _ = _run_matrix(
            config, lambda: OfflinePolicy(staleness_bound=1000.0, window_slots=100)
        )
        _assert_matrix_bitwise_equal(config, results)

    def test_battery_and_overhead_identical(self):
        """Battery gating/charging and the Table III decision overhead are
        vectorized too; both must match the scalar models bit for bit."""
        config = _paper_fleet_config(
            seed=5,
            total_slots=300,
            battery_capacity_j=5000.0,
            battery_charge_rate_w=2.0,
            min_battery_soc=0.3,
            include_scheduler_overhead=True,
            diurnal_arrivals=True,
        )
        results, _ = _run_matrix(config, lambda: OnlinePolicy(v=4000.0))
        _assert_matrix_bitwise_equal(config, results)
        fleet = results["fast-forward"]
        assert fleet.final_battery_soc  # batteries were actually in play
        assert any(soc < 1.0 for soc in fleet.final_battery_soc)

    @pytest.mark.parametrize(
        "policy_name",
        ["immediate", "sync", "online"],
    )
    def test_battery_enabled_matrix(self, policy_name):
        """Battery-gated fleets across all policies (deep discharge included)."""
        config = _paper_fleet_config(
            seed=6,
            total_slots=300,
            battery_capacity_j=1200.0,
            battery_charge_rate_w=0.0,
            min_battery_soc=0.2,
        )
        make = {
            "immediate": ImmediatePolicy,
            "sync": SyncPolicy,
            "online": lambda: OnlinePolicy(v=4000.0, staleness_bound=500.0),
        }[policy_name]
        results, _ = _run_matrix(config, make)
        _assert_matrix_bitwise_equal(config, results)

    @pytest.mark.parametrize("policy_name", ["immediate", "online"])
    def test_diurnal_arrivals_matrix(self, policy_name):
        """The day/night arrival process drives the same app churn everywhere."""
        config = _paper_fleet_config(seed=7, total_slots=300, diurnal_arrivals=True)
        make = {
            "immediate": ImmediatePolicy,
            "online": lambda: OnlinePolicy(v=4000.0, staleness_bound=500.0),
        }[policy_name]
        results, _ = _run_matrix(config, make)
        _assert_matrix_bitwise_equal(config, results)

    def test_sync_aggregation_with_batteries_matrix(self):
        """Synchronous rounds under battery gating: the quorum logic and the
        fast-forward round-skip argument must agree with the loop engine."""
        config = _paper_fleet_config(
            seed=8,
            total_slots=350,
            battery_capacity_j=6000.0,
            battery_charge_rate_w=1.0,
            min_battery_soc=0.25,
        )
        results, _ = _run_matrix(config, SyncPolicy)
        _assert_matrix_bitwise_equal(config, results)


class TestFleetScale:
    def test_thousand_user_run_completes(self):
        """Fleet size is a NumPy axis: a 1000-user online run finishes.

        The horizon is short (training jobs span hundreds of slots, so no
        local epochs complete) — the point is that the per-slot cost of
        decisions, device advancement and energy accounting no longer
        scales with Python-loop overhead.
        """
        config = SimulationConfig(
            num_users=1000,
            total_slots=60,
            app_arrival_prob=0.01,
            seed=0,
            num_train_samples=1000,
            num_test_samples=200,
            hidden_dims=(32,),
            eval_interval_slots=60,
            trace_interval_slots=20,
        )
        policy = OnlinePolicy(v=4000.0, staleness_bound=500.0)
        result = SimulationEngine(config, policy, backend="fleet").run()
        assert result.total_energy_j() > 0.0
        assert policy.decision_cost_evaluations() >= config.num_users
        assert len(result.queue_history) == config.total_slots + 1
        assert len(result.accountant.per_slot_totals()) == config.total_slots


class TestFleetEnergyAccountant:
    def test_matches_loop_reduction_order(self):
        """total_j must be the left-to-right Python sum of per-user totals."""
        accountant = FleetEnergyAccountant(3)
        energy = np.array([1.1, 2.2, 3.3])
        idle = np.array([True, False, False])
        app = np.array([False, True, False])
        training = np.array([False, False, True])
        corun = np.zeros(3, dtype=bool)
        overhead = np.array([0.5, 0.0, 0.0])
        accountant.record_slot(energy, idle, app, training, corun, overhead)
        expected = sum([1.1 + 0.5, 2.2, 3.3])
        assert accountant.total_j() == expected
        assert accountant.total_kj() == expected / 1000.0
        assert accountant.user_breakdown(0).idle_j == 1.1
        assert accountant.user_breakdown(0).overhead_j == 0.5
        assert accountant.training_related_j() == 3.3
        accountant.close_slot()
        assert accountant.per_slot_totals() == [expected]

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetEnergyAccountant(0)
