"""Metrics subsystem: run store, telemetry sink, regression detector, dashboard.

The live end-to-end path (sweep -> store -> chunked HTTP stream -> dashboard
-> regress) is gated by ``benchmarks/analytics_smoke.py``; this module pins
down the layer contracts: idempotent / concurrent store ingest, the sink's
strictly-increasing frame stream across recoveries, the shared benchmark
schema's legacy normalization, tolerance matching, and dashboard rendering
edges.
"""

import json
import multiprocessing

import pytest

from repro.analysis.runner import RunSpec, RunSummary
from repro.faults import FaultEvent, FaultPlan
from repro.metrics.bench import (
    append_trajectory,
    bench_record,
    load_bench_file,
    normalize_run,
)
from repro.metrics.dashboard import render_dashboard, write_dashboard
from repro.metrics.ingest import TelemetrySink, last_frame, read_frames
from repro.metrics.query import headline_pivot, policy_deltas, version_history
from repro.metrics.regress import (
    detect_bench_regressions,
    detect_store_regressions,
    parse_tolerance_overrides,
    tolerance_for,
)
from repro.metrics.store import MetricsStore, scenario_from_label
from repro.service.jobs import ExperimentService


def tiny_spec(**overrides) -> RunSpec:
    config = dict(
        num_users=3,
        total_slots=40,
        app_arrival_prob=0.01,
        seed=3,
        num_train_samples=120,
        num_test_samples=60,
        hidden_dims=(4,),
        eval_interval_slots=20,
        trace_interval_slots=10,
        learning_rate=0.05,
    )
    config.update(overrides.pop("config", {}))
    return RunSpec(policy="online", config=config, **overrides)


def fake_summary(spec_hash: str, policy: str = "online",
                 label: str = None, energy_j: float = 1000.0,
                 **overrides) -> RunSummary:
    fields = dict(
        spec_hash=spec_hash,
        policy=policy,
        label=label if label is not None else f"{policy}-{spec_hash}",
        energy_j=energy_j,
        energy_kj=energy_j / 1000.0,
        final_accuracy=0.8,
        best_accuracy=0.85,
        num_updates=40,
        decision_evaluations=400,
        mean_queue_length=1.5,
        mean_virtual_queue_length=100.0,
        final_virtual_queue_length=90.0,
        schedule_fraction=0.5,
        corun_jobs=3,
        background_jobs=7,
        comm_bytes_mb=1.25,
        comm_failures=0,
        mean_final_battery_soc=0.7,
        wall_time_s=2.0,
    )
    fields.update(overrides)
    return RunSummary(**fields)


class TestMetricsStore:
    def test_ingest_run_is_idempotent(self, tmp_path):
        store = MetricsStore(tmp_path / "m.sqlite")
        summary = fake_summary("a" * 16)
        assert store.ingest_run(summary, spec=tiny_spec()) == "a" * 16
        store.ingest_run(summary, spec=tiny_spec())
        assert store.count_runs() == 1
        row = store.run("a" * 16)
        assert row["energy_j"] == 1000.0
        assert row["seed"] == 3
        assert row["backend"] == "fleet"

    def test_reingest_without_spec_keeps_identity_columns(self, tmp_path):
        """Carbon re-annotation re-ingests bare summaries; identity survives."""
        store = MetricsStore(tmp_path / "m.sqlite")
        store.ingest_run(fake_summary("b" * 16), spec=tiny_spec(config={"seed": 9}))
        annotated = fake_summary("b" * 16, carbon_g=42.0)
        store.ingest_run(annotated)  # no spec this time
        row = store.run("b" * 16)
        assert row["seed"] == 9
        assert row["backend"] == "fleet"
        assert row["carbon_g"] == 42.0

    def test_scenario_parsed_from_label(self, tmp_path):
        assert scenario_from_label("scenario:churny-fleet[online]") == "churny-fleet"
        assert scenario_from_label("ad-hoc run") is None
        store = MetricsStore(tmp_path / "m.sqlite")
        store.ingest_run(fake_summary("c" * 16, label="scenario:churny-fleet[online]"))
        assert store.run("c" * 16)["scenario"] == "churny-fleet"
        assert store.scenarios() == ["churny-fleet"]

    def test_runs_filters(self, tmp_path):
        store = MetricsStore(tmp_path / "m.sqlite")
        store.ingest_run(fake_summary("d" * 16, policy="online"))
        store.ingest_run(fake_summary("e" * 16, policy="immediate"))
        assert len(store.runs()) == 2
        assert [r["spec_hash"] for r in store.runs(policy="online")] == ["d" * 16]

    def test_frames_become_series_points(self, tmp_path):
        store = MetricsStore(tmp_path / "m.sqlite")
        for slot, energy in ((10, 5.0), (20, 11.0)):
            store.ingest_frame("f" * 16, {
                "seq": slot // 10 - 1, "slot": slot, "total_slots": 40,
                "energy_j": energy, "accuracy": None, "final": slot == 20,
            })
        series = store.series("f" * 16)
        assert series["energy_j"] == [(10, 5.0), (20, 11.0)]
        # bookkeeping / None / bool keys never become metric rows
        assert set(series) == {"energy_j"}

    def test_memory_store_is_usable(self):
        store = MetricsStore(":memory:")
        store.ingest_run(fake_summary("9" * 16))
        assert store.count_runs() == 1


def _ingest_worker(args):
    """Module-level worker: concurrent cross-process writes to one sqlite."""
    path, worker = args
    store = MetricsStore(path)
    for index in range(5):
        spec_hash = f"{worker:02d}{index:02d}" + "0" * 12
        store.ingest_run(fake_summary(spec_hash))
        store.ingest_frame(spec_hash, {
            "seq": 0, "slot": 10, "total_slots": 40, "energy_j": 1.0,
        })
    return worker


class TestConcurrentIngest:
    def test_cross_process_writers_all_land(self, tmp_path):
        path = str(tmp_path / "m.sqlite")
        MetricsStore(path).count_runs()  # create the schema up front
        with multiprocessing.Pool(4) as pool:
            done = pool.map(_ingest_worker, [(path, w) for w in range(4)])
        assert sorted(done) == [0, 1, 2, 3]
        store = MetricsStore(path)
        assert store.count_runs() == 20
        assert store.count_series() == 20


class TestTelemetrySink:
    def test_slots_are_strictly_monotonic(self, tmp_path):
        sink = TelemetrySink(path=tmp_path / "t.jsonl", total_slots=40)
        assert sink.emit(10, {"energy_j": 1.0})["seq"] == 0
        # a recovery replaying earlier slots is dropped
        assert sink.emit(10, {"energy_j": 1.0}) is None
        assert sink.emit(5, {"energy_j": 0.5}) is None
        assert sink.emit(20, {"energy_j": 2.0})["seq"] == 1
        # the final frame may share the last checkpoint's slot
        final = sink.emit(20, {"energy_j": 2.0}, final=True)
        assert final["seq"] == 2 and final["final"] is True
        slots = [f["slot"] for f in read_frames(tmp_path / "t.jsonl")]
        assert slots == [10, 20, 20]

    def test_fresh_sink_resumes_from_file_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        first = TelemetrySink(path=path, total_slots=40)
        first.emit(10, {"energy_j": 1.0})
        first.emit(20, {"energy_j": 2.0})
        # a service retry builds a new sink over the same file
        resumed = TelemetrySink(path=path, total_slots=40)
        assert resumed.last_frame["seq"] == 1
        assert resumed.emit(20, {"energy_j": 2.0}) is None  # replay dropped
        frame = resumed.emit(30, {"energy_j": 3.0})
        assert frame["seq"] == 2
        assert [f["seq"] for f in read_frames(path)] == [0, 1, 2]
        assert last_frame(path)["slot"] == 30

    def test_read_frames_after_seq(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TelemetrySink(path=path, total_slots=40)
        for slot in (10, 20, 30):
            sink.emit(slot, {"energy_j": float(slot)})
        assert [f["slot"] for f in read_frames(path, after_seq=0)] == [20, 30]

    def test_torn_tail_line_is_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TelemetrySink(path=path, total_slots=40)
        sink.emit(10, {"energy_j": 1.0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 1, "slot":')  # crash mid-write
        assert [f["seq"] for f in read_frames(path)] == [0]
        assert last_frame(path)["seq"] == 0


class TestChaosFrameOrdering:
    def test_stream_stays_monotonic_across_a_faulted_retry(self, tmp_path):
        """A corrupt-checkpoint fault plus resume must not fork the stream."""
        plan = FaultPlan(events=[FaultEvent(kind="corrupt_checkpoint", at=20)])
        service = ExperimentService(
            tmp_path, checkpoint_every=10, retry=None, fault_plan=plan,
            metrics_store=str(tmp_path / "m.sqlite"),
        )
        record = service.submit(tiny_spec(), enqueue=False)
        service._running.discard(record.id)
        failed = service.run_job(record.id)
        assert failed.state == "failed"
        service._running.discard(record.id)
        resumed = service.run_job(record.id)
        assert resumed.state == "done"
        service.shutdown(wait=False)

        frames = read_frames(service.telemetry_path(record.id))
        seqs = [f["seq"] for f in frames]
        slots = [f["slot"] for f in frames]
        assert seqs == list(range(len(frames)))
        assert all(b > a for a, b in zip(slots, slots[1:-1])), slots
        assert frames[-1]["final"] is True
        # the same frames landed in the store's series table
        store = MetricsStore(str(tmp_path / "m.sqlite"))
        energy = store.series(record.id).get("energy_j", [])
        assert [slot for slot, _ in energy] == sorted({f["slot"] for f in frames})
        # and the poll endpoint overlays the tail frame on the job record
        payload = service.telemetry(record.id)
        assert payload["state"] == "done"
        assert payload["seq"] == seqs[-1]
        assert payload["total_slots"] == 40


def _flat_trajectory(path, energies, benchmark="seeded"):
    runs = [
        bench_record(benchmark, metrics={"energy_kj": energy},
                     context={"scenario": "fixture"})
        for energy in energies
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"benchmark": benchmark, "runs": runs}, handle)


class TestRegressionDetector:
    def test_seeded_regression_is_detected(self, tmp_path):
        _flat_trajectory(tmp_path / "BENCH_seeded.json", [100.0, 100.0, 300.0])
        regressions, stats = detect_bench_regressions(tmp_path)
        assert stats == {"files": 1, "groups": 1, "checks": 1}
        assert len(regressions) == 1
        assert regressions[0].metric == "energy_kj"

    def test_flat_trajectory_is_clean(self, tmp_path):
        _flat_trajectory(tmp_path / "BENCH_seeded.json", [100.0, 100.0, 100.0])
        regressions, _ = detect_bench_regressions(tmp_path)
        assert regressions == []

    def test_direction_low_ignores_improvements(self, tmp_path):
        runs = [
            bench_record("acc", metrics={"accuracy": value},
                         context={"scenario": "fixture"})
            for value in (0.80, 0.80, 0.95)  # accuracy went UP
        ]
        with open(tmp_path / "BENCH_acc.json", "w", encoding="utf-8") as handle:
            json.dump({"benchmark": "acc", "runs": runs}, handle)
        regressions, _ = detect_bench_regressions(tmp_path)
        assert regressions == []

    def test_overrides_widen_the_tolerance(self, tmp_path):
        _flat_trajectory(tmp_path / "BENCH_seeded.json", [100.0, 100.0, 300.0])
        overrides = parse_tolerance_overrides(["*energy*=5.0"])
        regressions, _ = detect_bench_regressions(tmp_path, tolerances=overrides)
        assert regressions == []

    def test_tolerance_table_matching(self):
        assert tolerance_for("max_divergence").abs_tol == pytest.approx(1e-12)
        assert tolerance_for("energy_kj").rel == pytest.approx(0.01)
        assert tolerance_for("wall_s").direction == "high"
        assert tolerance_for("gate.wall_s").direction == "high"  # leaf match
        assert tolerance_for("final_accuracy").direction == "low"

    def test_store_history_regression(self, tmp_path):
        store = MetricsStore(tmp_path / "m.sqlite")
        # same identity (label/policy/seed), new package version = new hash
        store.ingest_run(fake_summary("1" * 16, label="sweep", energy_j=1000.0))
        store.ingest_run(fake_summary("2" * 16, label="sweep", energy_j=1000.0))
        store.ingest_run(fake_summary("3" * 16, label="sweep", energy_j=3000.0))
        assert len(version_history(store)) == 1
        regressions, stats = detect_store_regressions(store)
        assert stats["groups"] == 1
        assert any(r.metric == "energy_j" for r in regressions)


class TestBenchSchema:
    def test_legacy_record_normalizes(self):
        legacy = {
            "timestamp": "2026-01-01T00:00:00+00:00",
            "scenario": "megafleet-1k",
            "shards": 2,
            "reference_s": 30.0,
            "reproducible": True,
            "mismatches": [],          # lists never become metrics
            "megafleet": None,
            "gate": {"wall_s": 9.5, "max_seconds": 600.0, "stage": "gate"},
        }
        run = normalize_run("chaos_smoke", legacy)
        assert run.context["scenario"] == "megafleet-1k"
        assert run.context["shards"] == 2
        assert run.context["gate.stage"] == "gate"
        assert run.metrics["reference_s"] == 30.0
        assert run.metrics["reproducible"] == 1.0  # bool -> 1.0/0.0
        assert run.metrics["gate.wall_s"] == 9.5
        assert run.gates["gate.max_seconds"] == 600.0
        assert "mismatches" not in run.metrics

    def test_new_schema_groups_with_matching_legacy(self):
        legacy = normalize_run(
            "chaos_smoke",
            {"scenario": "megafleet-1k", "shards": 2, "reference_s": 30.0},
        )
        fresh = normalize_run("chaos_smoke", bench_record(
            "chaos_smoke", metrics={"reference_s": 31.0},
            context={"scenario": "megafleet-1k", "shards": 2},
        ))
        assert fresh.group_key() == legacy.group_key()

    def test_append_preserves_legacy_runs_and_caps(self, tmp_path):
        path = tmp_path / "BENCH_mixed.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"benchmark": "mixed", "runs": [
                {"scenario": "old", "wall_s": 1.0},
            ]}, handle)
        for index in range(3):
            append_trajectory(path, bench_record(
                "mixed", metrics={"wall_s": float(index)},
                context={"scenario": "old"},
            ), max_runs=3)
        runs = load_bench_file(path)
        assert len(runs) == 3  # capped: the oldest rolled off
        assert len({run.group_key() for run in runs}) == 1

    def test_extra_rides_at_top_level_without_breaking_metrics(self):
        record = bench_record(
            "x", metrics={"wall_s": 1.0}, context={"scenario": "s"},
            extra={"failures": ["boom"], "detail": {"a": 1}},
        )
        assert record["failures"] == ["boom"]
        run = normalize_run("x", record)
        assert run.metrics == {"wall_s": 1.0}


class TestDashboard:
    def test_empty_store_renders_placeholder(self):
        html = render_dashboard(store=MetricsStore(":memory:"))
        assert "No runs ingested yet" in html
        assert "</html>" in html

    def test_populated_store_renders_pivot_and_sparklines(self, tmp_path):
        store = MetricsStore(":memory:")
        for policy, energy in (("immediate", 2000.0), ("online", 1200.0)):
            spec_hash = ("1" if policy == "online" else "2") * 16
            store.ingest_run(fake_summary(
                spec_hash, policy=policy,
                label=f"scenario:paper-baseline[{policy}]", energy_j=energy,
            ))
            for slot in (10, 20, 30):
                store.ingest_frame(spec_hash, {
                    "seq": slot // 10 - 1, "slot": slot, "total_slots": 30,
                    "energy_j": energy * slot / 30.0,
                })
        out = tmp_path / "dash.html"
        write_dashboard(out, store=store)
        html = out.read_text()
        assert "<svg" in html
        assert "paper-baseline" in html
        assert "online" in html
        # deltas vs the immediate baseline are glyph+label, not color-only
        assert ("▼" in html) or ("▲" in html)

    def test_query_helpers_feed_the_dashboard(self):
        store = MetricsStore(":memory:")
        store.ingest_run(fake_summary(
            "1" * 16, policy="immediate",
            label="scenario:paper-baseline[immediate]", energy_j=2000.0))
        store.ingest_run(fake_summary(
            "2" * 16, policy="online",
            label="scenario:paper-baseline[online]", energy_j=1000.0))
        pivot = headline_pivot(store, metric="energy_j")
        assert pivot["paper-baseline"]["online"] == 1000.0
        deltas = policy_deltas(store, baseline_policy="immediate", metric="energy_j")
        online = [d for d in deltas if d["policy"] == "online"][0]
        assert online["saving_pct"] == pytest.approx(50.0)
