"""Tests for the Lemma 1 lag bound, the knapsack DP and the offline policy."""

import pytest

from repro.core.offline import (
    KnapsackItem,
    KnapsackSolver,
    OfflinePolicy,
    lag_upper_bound,
)
from repro.core.policies import Decision, SlotContext


class TestLagUpperBound:
    def test_no_other_users(self):
        assert lag_upper_bound(0, [0.0], [None], [100.0]) == 0

    def test_overlapping_immediate_executions(self):
        # Both users start at 0 with duration 100: each finishes inside the
        # other's interval, so the bound is 1 for each.
        starts = [0.0, 0.0]
        apps = [None, None]
        durations = [100.0, 100.0]
        assert lag_upper_bound(0, starts, apps, durations) == 1
        assert lag_upper_bound(1, starts, apps, durations) == 1

    def test_disjoint_intervals_do_not_count(self):
        starts = [0.0, 1000.0]
        apps = [None, None]
        durations = [100.0, 100.0]
        assert lag_upper_bound(0, starts, apps, durations) == 0
        assert lag_upper_bound(1, starts, apps, durations) == 0

    def test_app_arrival_branch_counts(self):
        # User 1 trains immediately far in the future, but its co-running
        # option would finish inside user 0's window.
        starts = [0.0, 5000.0]
        apps = [None, 20.0]
        durations = [200.0, 100.0]
        assert lag_upper_bound(0, starts, apps, durations) == 1

    def test_own_app_interval_considered(self):
        # User 0 may defer to its app at t=500; user 1 finishes at 550 which
        # falls only inside that deferred interval.
        starts = [0.0, 400.0]
        apps = [500.0, None]
        durations = [200.0, 150.0]
        assert lag_upper_bound(0, starts, apps, durations) == 1

    def test_bound_never_exceeds_n_minus_1(self):
        n = 6
        starts = [0.0] * n
        apps = [10.0] * n
        durations = [100.0] * n
        for i in range(n):
            assert lag_upper_bound(i, starts, apps, durations) <= n - 1

    def test_input_validation(self):
        with pytest.raises(ValueError):
            lag_upper_bound(0, [0.0], [None, None], [1.0])
        with pytest.raises(IndexError):
            lag_upper_bound(5, [0.0], [None], [1.0])


class TestKnapsackSolver:
    def _item(self, user, saving, gap):
        return KnapsackItem(user_id=user, energy_saving_j=saving, gradient_gap=gap,
                            app_arrival_s=0.0)

    def test_selects_everything_under_relaxed_budget(self):
        solver = KnapsackSolver(capacity=1000.0)
        items = [self._item(i, 100.0, 1.0) for i in range(5)]
        solution = solver.solve(items)
        assert sorted(solution.selected_user_ids) == [0, 1, 2, 3, 4]
        assert solution.total_saving_j == pytest.approx(500.0)

    def test_respects_capacity(self):
        solver = KnapsackSolver(capacity=10.0, resolution=10)
        items = [self._item(0, 60.0, 6.0), self._item(1, 50.0, 5.0), self._item(2, 50.0, 5.0)]
        solution = solver.solve(items)
        assert solution.total_gap <= 10.0 + 1e-9
        # Optimal is items 1+2 (value 100) not item 0 alone (60).
        assert sorted(solution.selected_user_ids) == [1, 2]

    def test_matches_bruteforce_on_small_instances(self):
        import itertools

        solver = KnapsackSolver(capacity=12.0, resolution=1200)
        items = [
            self._item(0, 10.0, 4.0),
            self._item(1, 7.0, 3.0),
            self._item(2, 12.0, 6.0),
            self._item(3, 3.0, 2.0),
            self._item(4, 9.0, 5.0),
        ]
        best = 0.0
        for mask in itertools.product([0, 1], repeat=len(items)):
            gap = sum(i.gradient_gap for i, m in zip(items, mask) if m)
            if gap <= 12.0:
                best = max(best, sum(i.energy_saving_j for i, m in zip(items, mask) if m))
        solution = solver.solve(items)
        assert solution.total_saving_j == pytest.approx(best)

    def test_vectorized_dp_matches_scalar_reference(self):
        """The NumPy rolling-array DP reproduces the scalar Algorithm 1 DP
        exactly — selections, values and tie-breaks — on randomized
        instances (including zero-weight items and infeasible ones)."""
        import numpy as np

        def scalar_solve(solver, items):
            candidates = [
                (i, item)
                for i, item in enumerate(items)
                if item.energy_saving_j > 0.0 and item.gradient_gap <= solver.capacity
            ]
            cap = solver.resolution
            best = [0.0] * (cap + 1)
            chosen = [[] for _ in range(cap + 1)]
            for index, item in candidates:
                weight = max(0, solver._quantise(item.gradient_gap))
                for y in range(cap, weight - 1, -1):
                    value = best[y - weight] + item.energy_saving_j
                    if value > best[y]:
                        best[y] = value
                        chosen[y] = chosen[y - weight] + [index]
            best_y = max(range(cap + 1), key=lambda y: best[y])
            return [items[i].user_id for i in chosen[best_y]], best[best_y]

        rng = np.random.default_rng(7)
        for _ in range(60):
            capacity = float(rng.uniform(1.0, 1500.0))
            solver = KnapsackSolver(capacity, resolution=int(rng.choice([40, 250])))
            items = [
                self._item(
                    user,
                    float(rng.uniform(-5.0, 300.0)),
                    float(rng.uniform(0.0, capacity * 1.3)),
                )
                for user in range(int(rng.integers(0, 24)))
            ]
            solution = solver.solve(items)
            expected_ids, expected_value = scalar_solve(solver, items)
            assert solution.selected_user_ids == expected_ids
            assert solution.total_saving_j == expected_value

    def test_skips_negative_saving_items(self):
        solver = KnapsackSolver(capacity=100.0)
        items = [self._item(0, -50.0, 1.0), self._item(1, 20.0, 1.0)]
        solution = solver.solve(items)
        assert solution.selected_user_ids == [1]

    def test_skips_infeasible_items(self):
        solver = KnapsackSolver(capacity=5.0)
        items = [self._item(0, 100.0, 50.0), self._item(1, 10.0, 1.0)]
        solution = solver.solve(items)
        assert solution.selected_user_ids == [1]

    def test_empty_input(self):
        solver = KnapsackSolver(capacity=5.0)
        solution = solver.solve([])
        assert solution.selected_user_ids == []
        assert solution.total_saving_j == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            KnapsackSolver(capacity=0.0)
        with pytest.raises(ValueError):
            KnapsackSolver(capacity=10.0, resolution=0)


class _FakeOracle:
    """Minimal arrival oracle: one fixed arrival per user."""

    def __init__(self, arrivals):
        self._arrivals = arrivals  # {user: (slot, app_name)}

    def next_arrival(self, user_id, start_slot, end_slot):
        arrival = self._arrivals.get(user_id)
        if arrival is None:
            return None
        slot, name = arrival
        if start_slot <= slot < end_slot:
            return slot, name
        return None


class TestOfflinePolicy:
    def _context(self, slot, num_ready=2):
        return SlotContext(slot=slot, slot_seconds=1.0, num_arrivals=0,
                           num_ready=num_ready, num_training=0, num_users=2)

    def test_requires_oracle(self, observation_factory):
        policy = OfflinePolicy(staleness_bound=100.0, window_slots=100)
        policy._pending_observations[0] = observation_factory(user_id=0)
        with pytest.raises(RuntimeError):
            policy.begin_slot(self._context(0))

    def test_selected_user_waits_for_its_app(self, observation_factory):
        policy = OfflinePolicy(staleness_bound=1000.0, window_slots=200)
        policy.attach_oracle(_FakeOracle({0: (50, "zoom")}))
        obs_early = observation_factory(user_id=0, slot=0, app_running=False)
        # First decision registers the user; planning happens at slot 0.
        policy.begin_slot(self._context(0))
        assert policy.decide(obs_early) is Decision.IDLE
        policy.begin_slot(self._context(1))
        assert policy.decide(observation_factory(user_id=0, slot=10)) is Decision.IDLE
        # Once the app arrives the user co-runs.
        obs_app = observation_factory(user_id=0, slot=50, app_running=True, app_name="zoom")
        assert policy.decide(obs_app) is Decision.SCHEDULE

    def test_user_without_arrival_defers_by_default(self, observation_factory):
        policy = OfflinePolicy(staleness_bound=1000.0, window_slots=100)
        policy.attach_oracle(_FakeOracle({}))
        policy.begin_slot(self._context(0))
        obs = observation_factory(user_id=0, slot=0, app_running=False)
        policy._pending_observations[0] = obs
        policy.begin_slot(self._context(100))  # replan with the user pending
        assert policy.decide(observation_factory(user_id=0, slot=100)) is Decision.IDLE

    def test_user_without_arrival_can_schedule_immediately_when_configured(
        self, observation_factory
    ):
        policy = OfflinePolicy(staleness_bound=1000.0, window_slots=100,
                               schedule_unmatched_immediately=True)
        policy.attach_oracle(_FakeOracle({}))
        obs = observation_factory(user_id=0, slot=0, app_running=False)
        policy._pending_observations[0] = obs
        policy.begin_slot(self._context(0))
        assert policy.decide(obs) is Decision.SCHEDULE

    def test_opportunistic_corun_for_unplanned_user(self, observation_factory):
        policy = OfflinePolicy(staleness_bound=1000.0, window_slots=500)
        policy.attach_oracle(_FakeOracle({}))
        policy.begin_slot(self._context(0))
        obs = observation_factory(user_id=3, slot=20, app_running=True, app_name="news")
        assert policy.decide(obs) is Decision.SCHEDULE

    def test_reset_clears_state(self, observation_factory):
        policy = OfflinePolicy(staleness_bound=500.0, window_slots=100)
        policy.attach_oracle(_FakeOracle({0: (10, "zoom")}))
        policy.begin_slot(self._context(0))
        policy.decide(observation_factory(user_id=0))
        policy.reset()
        assert policy.decision_cost_evaluations() == 0
        assert policy.solutions == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            OfflinePolicy(window_slots=0)

    def test_invalid_gap_metric(self):
        with pytest.raises(ValueError):
            OfflinePolicy(gap_metric="entropy")

    def test_lag_metric_builds_integer_weights(self, observation_factory):
        """With gap_metric='lag' the knapsack weights are the Lemma 1 counts."""
        policy = OfflinePolicy(staleness_bound=10.0, window_slots=200, gap_metric="lag")
        policy.attach_oracle(_FakeOracle({0: (50, "zoom"), 1: (60, "news")}))
        for user in (0, 1):
            policy._pending_observations[user] = observation_factory(user_id=user)
        policy.begin_slot(self._context(0))
        assert policy.solutions, "planning should have produced a knapsack solution"
        solution = policy.solutions[-1]
        # Both users fit comfortably inside a lag budget of 10 updates.
        assert sorted(solution.selected_user_ids) == [0, 1]
        assert solution.total_gap <= 10.0


class TestOracleAttachment:
    """attach_oracle is idempotent and refuses mid-run oracle swaps."""

    def _context(self, slot):
        return SlotContext(slot=slot, slot_seconds=1.0, num_arrivals=0,
                           num_ready=1, num_training=0, num_users=2)

    def _ready_policy(self):
        policy = OfflinePolicy(staleness_bound=100.0, window_slots=10)
        oracle = _FakeOracle({})
        policy.attach_oracle(oracle)
        return policy, oracle

    def test_reattaching_same_oracle_is_noop(self):
        policy, oracle = self._ready_policy()
        policy.attach_oracle(oracle)  # engine construction + reruns
        assert policy._oracle is oracle

    def test_swapping_before_planning_is_allowed(self):
        policy, _ = self._ready_policy()
        replacement = _FakeOracle({})
        policy.attach_oracle(replacement)
        assert policy._oracle is replacement

    def test_swapping_after_planning_raises(self, observation_factory):
        policy, _ = self._ready_policy()
        policy.begin_slot(self._context(0))
        policy.decide(observation_factory(user_id=0))
        policy.begin_slot(self._context(10))  # plans the next window
        with pytest.raises(RuntimeError):
            policy.attach_oracle(_FakeOracle({}))

    def test_reset_allows_a_fresh_oracle(self, observation_factory):
        policy, _ = self._ready_policy()
        policy.begin_slot(self._context(0))
        policy.decide(observation_factory(user_id=0))
        policy.begin_slot(self._context(10))
        policy.reset()
        replacement = _FakeOracle({})
        policy.attach_oracle(replacement)
        assert policy._oracle is replacement
