"""Tests for the Lyapunov online controller and policy (Eq. 21-23, Alg. 2)."""

import pytest

from repro.core.online import OnlineController, OnlinePolicy
from repro.core.policies import Decision, SlotContext
from repro.core.staleness import gradient_gap


def _context(slot=0, num_arrivals=0, num_ready=0, num_users=5):
    return SlotContext(slot=slot, slot_seconds=1.0, num_arrivals=num_arrivals,
                       num_ready=num_ready, num_training=0, num_users=num_users)


class TestOnlineController:
    def test_zero_v_schedules_whenever_queue_backlogged(self, observation_factory):
        controller = OnlineController(v=0.0)
        obs = observation_factory()
        assert controller.decide(obs, q_length=1.0, h_length=0.0) is Decision.SCHEDULE

    def test_large_v_idles_with_empty_queues(self, observation_factory):
        controller = OnlineController(v=1e5)
        obs = observation_factory()
        assert controller.decide(obs, q_length=0.0, h_length=0.0) is Decision.IDLE

    def test_eq22_threshold_no_app(self, observation_factory):
        """Without an app: schedule iff Q >= V * (P_b - P_d) (in kJ per slot)."""
        v = 4000.0
        obs = observation_factory(app_running=False, momentum_norm=0.0)
        controller = OnlineController(v=v, epsilon=0.0)
        threshold = v * (obs.power_training_w - obs.power_idle_w) / 1000.0
        assert controller.decide(obs, q_length=threshold + 0.01, h_length=0.0) is Decision.SCHEDULE
        assert controller.decide(obs, q_length=threshold - 0.01, h_length=0.0) is Decision.IDLE

    def test_eq22_threshold_with_app(self, observation_factory):
        """With an app: schedule iff Q >= V * (P_a' - P_a) (in kJ per slot)."""
        v = 4000.0
        obs = observation_factory(app_running=True, app_name="map", momentum_norm=0.0)
        controller = OnlineController(v=v, epsilon=0.0)
        threshold = v * (obs.power_corun_w - obs.power_app_w) / 1000.0
        assert controller.decide(obs, q_length=threshold + 0.01, h_length=0.0) is Decision.SCHEDULE
        assert controller.decide(obs, q_length=threshold - 0.01, h_length=0.0) is Decision.IDLE

    def test_corunning_threshold_lower_than_background(self, observation_factory):
        """Co-running needs a shorter queue than background-only execution."""
        v = 4000.0
        controller = OnlineController(v=v, epsilon=0.0)
        no_app = observation_factory(app_running=False, momentum_norm=0.0)
        with_app = observation_factory(app_running=True, momentum_norm=0.0,
                                       power_corun_w=1.8, power_app_w=1.5)
        threshold_no_app = v * (no_app.power_training_w - no_app.power_idle_w) / 1000.0
        threshold_app = v * (with_app.power_corun_w - with_app.power_app_w) / 1000.0
        assert threshold_app < threshold_no_app
        q_between = (threshold_app + threshold_no_app) / 2.0
        assert controller.decide(with_app, q_between, 0.0) is Decision.SCHEDULE
        assert controller.decide(no_app, q_between, 0.0) is Decision.IDLE

    def test_eq23_staleness_pressure_forces_scheduling(self, observation_factory):
        """A large accumulated gap with H > 0 pushes the device to schedule."""
        controller = OnlineController(v=1e5, epsilon=0.01)
        obs = observation_factory(app_running=False, momentum_norm=0.5,
                                  estimated_lag=2, current_gap=30.0)
        assert controller.decide(obs, q_length=0.0, h_length=0.0) is Decision.IDLE
        assert controller.decide(obs, q_length=0.0, h_length=50.0) is Decision.SCHEDULE

    def test_costs_expose_gap_estimates(self, observation_factory):
        controller = OnlineController(v=1000.0, epsilon=0.2)
        obs = observation_factory(momentum_norm=2.0, estimated_lag=3, current_gap=1.0)
        costs = controller.evaluate(obs, q_length=1.0, h_length=2.0)
        assert costs.schedule_gap == pytest.approx(
            gradient_gap(2.0, obs.learning_rate, obs.momentum_coeff, 3)
        )
        assert costs.idle_gap == pytest.approx(1.2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OnlineController(v=-1.0)
        with pytest.raises(ValueError):
            OnlineController(v=1.0, epsilon=-0.1)


class TestOnlinePolicy:
    def test_queue_updates_follow_eq15_eq16(self, observation_factory):
        policy = OnlinePolicy(v=0.0, staleness_bound=10.0)
        context = _context(num_arrivals=4)
        policy.begin_slot(context)
        policy.end_slot(context, num_scheduled=1, gap_sum=12.0)
        assert policy.task_queue.length == pytest.approx(3.0)  # max(0+4-1,0)
        assert policy.virtual_queue.length == pytest.approx(2.0)  # 0+12-10

    def test_decisions_counted_for_overhead(self, observation_factory):
        policy = OnlinePolicy(v=0.0, staleness_bound=100.0)
        policy.begin_slot(_context(num_arrivals=2))
        policy.decide(observation_factory(user_id=0))
        policy.decide(observation_factory(user_id=1))
        assert policy.decision_cost_evaluations() == 2

    def test_distributed_vs_centralized_same_decisions(self, observation_factory):
        distributed = OnlinePolicy(v=4000.0, staleness_bound=500.0, distributed=True)
        centralized = OnlinePolicy(v=4000.0, staleness_bound=500.0, distributed=False)
        for policy in (distributed, centralized):
            policy.begin_slot(_context(num_arrivals=3))
        observations = [
            observation_factory(user_id=i, app_running=(i % 2 == 0), current_gap=float(i))
            for i in range(6)
        ]
        decisions_d = [distributed.decide(o) for o in observations]
        decisions_c = [centralized.decide(o) for o in observations]
        assert decisions_d == decisions_c

    def test_distributed_mode_hides_app_status_from_server(self, observation_factory):
        """Algorithm 2: the user sends fewer scalars than the centralized scheme."""
        distributed = OnlinePolicy(v=100.0, staleness_bound=100.0, distributed=True)
        centralized = OnlinePolicy(v=100.0, staleness_bound=100.0, distributed=False)
        for policy in (distributed, centralized):
            policy.begin_slot(_context())
            policy.decide(observation_factory())
        assert distributed.messages_to_server <= centralized.messages_to_server

    def test_reset_clears_queues_and_logs(self, observation_factory):
        policy = OnlinePolicy(v=10.0, staleness_bound=50.0)
        context = _context(num_arrivals=3)
        policy.begin_slot(context)
        policy.decide(observation_factory())
        policy.end_slot(context, num_scheduled=0, gap_sum=100.0)
        policy.reset()
        assert policy.task_queue.length == 0.0
        assert policy.virtual_queue.length == 0.0
        assert policy.decision_log == []
        assert policy.decision_cost_evaluations() == 0

    def test_queue_histories_exposed(self):
        policy = OnlinePolicy(v=10.0, staleness_bound=50.0)
        context = _context(num_arrivals=2)
        for _ in range(5):
            policy.begin_slot(context)
            policy.end_slot(context, num_scheduled=0, gap_sum=0.0)
        assert len(policy.queue_history()) == 6
        assert policy.mean_queue_length() > 0.0
        assert policy.mean_virtual_queue_length() == 0.0

    def test_higher_v_idles_more(self, observation_factory):
        """With the same moderate backlog, a larger V waits while a small V schedules."""
        low = OnlinePolicy(v=1000.0, staleness_bound=500.0)
        high = OnlinePolicy(v=50000.0, staleness_bound=500.0)
        context = _context(num_arrivals=5)
        for policy in (low, high):
            policy.begin_slot(context)
            policy.end_slot(context, num_scheduled=0, gap_sum=0.0)
            policy.begin_slot(_context(slot=1))
        obs = observation_factory(app_running=False, momentum_norm=0.0)
        assert low.decide(obs) is Decision.SCHEDULE
        assert high.decide(obs) is Decision.IDLE
