"""Tests for the baseline policies and the Theorem 1 trade-off helpers."""

import pytest

from repro.core.policies import (
    Aggregation,
    Decision,
    ImmediatePolicy,
    SchedulingPolicy,
    SyncPolicy,
)
from repro.core.tradeoff import (
    SweepPoint,
    TradeoffAnalyzer,
    theorem1_energy_bound,
    theorem1_queue_bound,
)


class TestBaselinePolicies:
    def test_immediate_always_schedules(self, observation_factory):
        policy = ImmediatePolicy()
        for app_running in (True, False):
            assert policy.decide(observation_factory(app_running=app_running)) is Decision.SCHEDULE

    def test_immediate_uses_async_aggregation(self):
        assert ImmediatePolicy.aggregation is Aggregation.ASYNC

    def test_sync_always_schedules(self, observation_factory):
        policy = SyncPolicy()
        assert policy.decide(observation_factory()) is Decision.SCHEDULE

    def test_sync_uses_sync_aggregation(self):
        assert SyncPolicy.aggregation is Aggregation.SYNC

    def test_policy_names_are_distinct(self):
        assert ImmediatePolicy.name != SyncPolicy.name

    def test_base_class_hooks_are_noops(self, observation_factory):
        policy = ImmediatePolicy()
        policy.begin_slot(None)
        policy.end_slot(None, 0, 0.0)
        policy.notify_update_applied(0, 1, 0.5)
        policy.reset()
        assert policy.decision_cost_evaluations() == 0

    def test_cannot_instantiate_abstract_base(self):
        with pytest.raises(TypeError):
            SchedulingPolicy()  # type: ignore[abstract]


class TestTheorem1Bounds:
    def test_energy_bound_decreases_in_v(self):
        bounds = [theorem1_energy_bound(100.0, v, 1.0) for v in (10.0, 100.0, 1000.0)]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[-1] == pytest.approx(1.1)

    def test_queue_bound_increases_in_v(self):
        bounds = [
            theorem1_queue_bound(100.0, v, optimal_power=1.0, achieved_power=0.8,
                                 epsilon_slack=0.5)
            for v in (10.0, 100.0, 1000.0)
        ]
        assert bounds == sorted(bounds)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            theorem1_energy_bound(-1.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            theorem1_energy_bound(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            theorem1_queue_bound(1.0, 1.0, 1.0, 1.0, 0.0)


class TestTradeoffAnalyzer:
    def _points(self):
        return [
            SweepPoint(v=0.0, energy_kj=800.0, mean_queue=1.0, mean_virtual_queue=0.0),
            SweepPoint(v=2e4, energy_kj=400.0, mean_queue=6.0, mean_virtual_queue=50.0),
            SweepPoint(v=6e4, energy_kj=300.0, mean_queue=12.0, mean_virtual_queue=300.0),
            SweepPoint(v=1e5, energy_kj=280.0, mean_queue=18.0, mean_virtual_queue=900.0),
        ]

    def test_shapes_detected(self):
        analyzer = TradeoffAnalyzer(self._points())
        assert analyzer.energy_is_nonincreasing()
        assert analyzer.queues_are_nondecreasing()

    def test_violation_detected(self):
        points = self._points()
        points[2] = SweepPoint(v=6e4, energy_kj=900.0, mean_queue=12.0, mean_virtual_queue=300.0)
        analyzer = TradeoffAnalyzer(points)
        assert not analyzer.energy_is_nonincreasing()

    def test_approximation_factor_and_saving(self):
        analyzer = TradeoffAnalyzer(self._points())
        assert analyzer.approximation_factor(offline_energy_kj=250.0) == pytest.approx(1.12)
        assert analyzer.energy_saving_vs(800.0) == pytest.approx(0.65)

    def test_knee_in_interior(self):
        analyzer = TradeoffAnalyzer(self._points())
        knee = analyzer.knee_v()
        assert 0.0 < knee < 1e5

    def test_points_sorted_internally(self):
        shuffled = list(reversed(self._points()))
        analyzer = TradeoffAnalyzer(shuffled)
        assert analyzer.points[0].v == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            TradeoffAnalyzer(self._points()[:1])
        analyzer = TradeoffAnalyzer(self._points())
        with pytest.raises(ValueError):
            analyzer.approximation_factor(0.0)
        with pytest.raises(ValueError):
            analyzer.energy_saving_vs(-1.0)
