"""Tests for the Eq. (10) power model and the energy accountant."""

import pytest

from repro.energy.power_model import DeviceState, EnergyAccountant, EnergyBreakdown, PowerModel


@pytest.fixture()
def model(table):
    return PowerModel(table=table)


class TestPowerLevels:
    def test_idle_power(self, model, table):
        for device in table.devices():
            assert model.power(device, DeviceState.IDLE) == table.idle_power(device)

    def test_training_power(self, model, table):
        for device in table.devices():
            assert model.power(device, DeviceState.TRAINING_ONLY) == table.training_power(device)

    def test_app_power_specific(self, model, table):
        assert model.power("pixel2", DeviceState.APP_ONLY, "tiktok") == table.app_power(
            "pixel2", "tiktok"
        )

    def test_corun_power_specific(self, model, table):
        assert model.power("pixel2", DeviceState.CORUNNING, "zoom") == table.corun_power(
            "pixel2", "zoom"
        )

    def test_app_power_defaults_to_mean(self, model, table):
        mean = sum(table.app_power("pixel2", a) for a in table.apps("pixel2")) / len(
            table.apps("pixel2")
        )
        assert model.app_power("pixel2") == pytest.approx(mean)

    def test_corun_power_defaults_to_mean(self, model, table):
        mean = sum(table.corun_power("hikey970", a) for a in table.apps("hikey970")) / len(
            table.apps("hikey970")
        )
        assert model.corun_power("hikey970") == pytest.approx(mean)

    def test_eq10_ordering_on_heterogeneous_devices(self, model):
        """P_a' > P_a > P_b > P_d holds on average for Pixel2 (Section V)."""
        device = "pixel2"
        assert model.corun_power(device) > model.app_power(device)
        assert model.app_power(device) > model.training_power(device)
        assert model.training_power(device) > model.idle_power(device)

    def test_unknown_state_rejected(self, model):
        with pytest.raises(ValueError):
            model.power("pixel2", "unplugged")  # type: ignore[arg-type]


class TestSchedulerOverhead:
    def test_overhead_disabled_by_default(self, model):
        idle = model.power("pixel2", DeviceState.IDLE, deciding=True)
        assert idle == model.idle_power("pixel2")

    def test_overhead_enabled(self, table):
        model = PowerModel(table=table, include_scheduler_overhead=True)
        deciding = model.power("pixel2", DeviceState.IDLE, deciding=True)
        assert deciding == table.overhead_power("pixel2")
        assert model.power("pixel2", DeviceState.IDLE, deciding=False) == table.idle_power(
            "pixel2"
        )

    def test_knapsack_saving_term(self, model, table):
        """s_i = P_b + P_a - P_a' matches the Table II components."""
        value = model.expected_corun_saving_power("pixel2", "map")
        expected = (
            table.training_power("pixel2")
            + table.app_power("pixel2", "map")
            - table.corun_power("pixel2", "map")
        )
        assert value == pytest.approx(expected)


class TestEnergyAccountant:
    def test_records_by_state(self):
        accountant = EnergyAccountant()
        accountant.record(0, DeviceState.IDLE, 1.0)
        accountant.record(0, DeviceState.TRAINING_ONLY, 2.0)
        accountant.record(0, DeviceState.CORUNNING, 3.0)
        accountant.record(1, DeviceState.APP_ONLY, 4.0)
        breakdown = accountant.user_breakdown(0)
        assert breakdown.idle_j == 1.0
        assert breakdown.training_j == 2.0
        assert breakdown.corunning_j == 3.0
        assert accountant.user_breakdown(1).app_j == 4.0
        assert accountant.total_j() == pytest.approx(10.0)
        assert accountant.total_kj() == pytest.approx(0.01)

    def test_training_related_energy(self):
        accountant = EnergyAccountant()
        accountant.record(0, DeviceState.TRAINING_ONLY, 5.0)
        accountant.record(0, DeviceState.CORUNNING, 7.0)
        accountant.record(0, DeviceState.IDLE, 100.0)
        assert accountant.training_related_j() == pytest.approx(12.0)

    def test_overhead_recorded_separately(self):
        accountant = EnergyAccountant()
        accountant.record(0, DeviceState.IDLE, 1.0, overhead_j=0.25)
        assert accountant.user_breakdown(0).overhead_j == pytest.approx(0.25)
        assert accountant.total_j() == pytest.approx(1.25)

    def test_negative_energy_rejected(self):
        accountant = EnergyAccountant()
        with pytest.raises(ValueError):
            accountant.record(0, DeviceState.IDLE, -1.0)

    def test_per_slot_totals_monotone(self):
        accountant = EnergyAccountant()
        for i in range(5):
            accountant.record(0, DeviceState.IDLE, 1.0)
            accountant.close_slot()
        totals = accountant.per_slot_totals()
        assert totals == sorted(totals)
        assert totals[-1] == pytest.approx(5.0)

    def test_breakdown_total(self):
        breakdown = EnergyBreakdown(idle_j=1, app_j=2, training_j=3, corunning_j=4, overhead_j=0.5)
        assert breakdown.total_j() == pytest.approx(10.5)
        assert breakdown.total_kj() == pytest.approx(0.0105)
