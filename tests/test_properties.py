"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.offline import KnapsackItem, KnapsackSolver, lag_upper_bound
from repro.core.online import OnlineController
from repro.core.queues import TaskQueue, VirtualQueue
from repro.core.staleness import GapTracker, gradient_gap, momentum_lag_factor
from repro.energy.measurements import energy_saving_fraction
from repro.fl.model import build_mlp
from repro.fl.optimizer import MomentumSGD

# Keep hypothesis examples modest: each example is cheap but the suite is large.
DEFAULT_SETTINGS = settings(max_examples=50, deadline=None)


class TestQueueProperties:
    @DEFAULT_SETTINGS
    @given(st.lists(st.tuples(st.floats(0, 50), st.floats(0, 50)), min_size=1, max_size=100))
    def test_task_queue_never_negative_and_bounded(self, events):
        queue = TaskQueue()
        total_arrivals = 0.0
        for arrivals, services in events:
            queue.update(arrivals, services)
            total_arrivals += arrivals
            assert queue.length >= 0.0
            assert queue.length <= total_arrivals

    @DEFAULT_SETTINGS
    @given(
        st.floats(0.1, 100.0),
        st.lists(st.floats(0, 200), min_size=1, max_size=100),
    )
    def test_virtual_queue_never_negative(self, bound, gaps):
        queue = VirtualQueue(staleness_bound=bound)
        for gap in gaps:
            queue.update(gap)
            assert queue.length >= 0.0

    @DEFAULT_SETTINGS
    @given(st.floats(0.1, 100.0), st.lists(st.floats(0, 200), min_size=1, max_size=50))
    def test_virtual_queue_history_length(self, bound, gaps):
        queue = VirtualQueue(staleness_bound=bound)
        for gap in gaps:
            queue.update(gap)
        assert len(queue.history()) == len(gaps) + 1


class TestStalenessProperties:
    @DEFAULT_SETTINGS
    @given(st.floats(0.0, 0.99), st.integers(0, 200))
    def test_lag_factor_bounded_by_geometric_limit(self, beta, lag):
        factor = momentum_lag_factor(beta, lag)
        assert 0.0 <= factor <= (1.0 / (1.0 - beta)) + 1e-9
        assert factor <= lag + 1e-9 or beta > 0.0

    @DEFAULT_SETTINGS
    @given(
        st.floats(0.0, 100.0),
        st.floats(0.001, 1.0),
        st.floats(0.0, 0.99),
        st.integers(0, 50),
        st.integers(0, 50),
    )
    def test_gradient_gap_monotone_in_lag(self, norm, lr, beta, lag_a, lag_b):
        low, high = sorted((lag_a, lag_b))
        assert gradient_gap(norm, lr, beta, low) <= gradient_gap(norm, lr, beta, high) + 1e-12

    @DEFAULT_SETTINGS
    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=30), st.floats(0.0, 1.0))
    def test_gap_tracker_total_equals_sum_of_users(self, gaps, epsilon):
        tracker = GapTracker(epsilon=epsilon)
        for user, gap in enumerate(gaps):
            tracker.on_scheduled(user, gap)
        assert tracker.total_gap() == pytest.approx(sum(gaps))
        for user in range(len(gaps)):
            tracker.on_update_applied(user)
        assert tracker.total_gap() == pytest.approx(0.0)


class TestKnapsackProperties:
    @DEFAULT_SETTINGS
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100.0), st.floats(0.01, 20.0)),
            min_size=0,
            max_size=12,
        ),
        st.floats(1.0, 50.0),
    )
    def test_solution_is_feasible_and_no_worse_than_greedy_singletons(self, raw, capacity):
        items = [
            KnapsackItem(user_id=i, energy_saving_j=value, gradient_gap=gap, app_arrival_s=0.0)
            for i, (value, gap) in enumerate(raw)
        ]
        solver = KnapsackSolver(capacity=capacity, resolution=500)
        solution = solver.solve(items)
        # Feasibility: the selected gaps respect the budget (up to grid rounding).
        assert solution.total_gap <= capacity + capacity / 500 + 1e-9
        # Selected users are unique and valid.
        assert len(set(solution.selected_user_ids)) == len(solution.selected_user_ids)
        assert set(solution.selected_user_ids) <= {item.user_id for item in items}
        # The DP is at least as good as picking the single best feasible item.
        singleton_best = max(
            (item.energy_saving_j for item in items if item.gradient_gap <= capacity),
            default=0.0,
        )
        assert solution.total_saving_j >= singleton_best - 1e-9

    @DEFAULT_SETTINGS
    @given(
        st.integers(2, 8),
        st.floats(0.0, 500.0),
        st.floats(1.0, 300.0),
    )
    def test_lag_bound_is_at_most_n_minus_1(self, n, spread, duration):
        starts = [float(i) * spread for i in range(n)]
        apps = [start + spread / 2 for start in starts]
        durations = [duration] * n
        for i in range(n):
            bound = lag_upper_bound(i, starts, apps, durations)
            assert 0 <= bound <= n - 1


class TestOnlineControllerProperties:
    @DEFAULT_SETTINGS
    @given(
        st.floats(0.0, 1e5),
        st.floats(0.0, 30.0),
        st.floats(0.0, 2000.0),
        st.floats(0.0, 10.0),
        st.booleans(),
    )
    def test_decision_matches_cost_comparison(self, v, q, h, gap, app_running):
        from tests.conftest import make_observation

        controller = OnlineController(v=v, epsilon=0.05)
        observation = make_observation(app_running=app_running, current_gap=gap)
        costs = controller.evaluate(observation, q, h)
        decision = controller.decide(observation, q, h)
        assert decision is costs.best()
        # The objective values are finite.
        assert np.isfinite(costs.schedule_cost) and np.isfinite(costs.idle_cost)

    @DEFAULT_SETTINGS
    @given(st.floats(0.0, 30.0), st.floats(0.0, 500.0))
    def test_scheduling_preference_monotone_in_queue(self, q, h):
        """If the controller schedules at backlog Q, it also schedules at Q' > Q."""
        from tests.conftest import make_observation

        controller = OnlineController(v=4000.0, epsilon=0.05)
        observation = make_observation(app_running=False, current_gap=1.0)
        from repro.core.policies import Decision

        if controller.decide(observation, q, h) is Decision.SCHEDULE:
            assert controller.decide(observation, q + 5.0, h) is Decision.SCHEDULE


class TestEnergyProperties:
    @DEFAULT_SETTINGS
    @given(
        st.floats(0.1, 15.0),
        st.floats(10.0, 1000.0),
        st.floats(0.1, 15.0),
        st.floats(0.1, 20.0),
        st.floats(10.0, 1000.0),
    )
    def test_saving_fraction_below_one(self, p_train, t_train, p_app, p_corun, t_app):
        saving = energy_saving_fraction(p_train, t_train, p_app, p_corun, t_app)
        assert saving < 1.0

    @DEFAULT_SETTINGS
    @given(st.floats(0.1, 10.0), st.floats(10.0, 500.0), st.floats(0.1, 10.0), st.floats(10.0, 500.0))
    def test_saving_positive_when_corun_cheaper_than_app_alone(
        self, p_train, t_train, p_app, t_app
    ):
        """If co-running costs no more than the app alone, saving is positive."""
        saving = energy_saving_fraction(p_train, t_train, p_app, p_app, t_app)
        assert saving > 0.0


class TestBackendDifferentialFuzz:
    """Differential fuzzing of the execution-mode equivalence contract.

    Hypothesis draws small random fleets and the same simulation runs on
    every execution mode — the per-user reference loop, the vectorized
    fleet backend with and without event-horizon fast-forward, and the
    sharded engine at two and three shards (inline handles: same protocol
    and arithmetic as worker processes, without fork overhead).  Every
    observable output must be bitwise identical across all five.

    Runs are seconds-scale, so examples are few; ``derandomize`` keeps CI
    stable while local runs can widen the net with
    ``--hypothesis-seed=random``.
    """

    FUZZ_SETTINGS = settings(
        max_examples=8,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )

    @staticmethod
    def _digest(result) -> dict:
        return dict(
            energy=result.total_energy_j(),
            updates=result.num_updates,
            accuracy=[
                (s.time_s, s.accuracy, s.loss) for s in result.accuracy.samples
            ],
            queue=list(result.queue_history),
            virtual_queue=list(result.virtual_queue_history),
            slots=[
                (s.slot, s.cumulative_energy_j, s.queue_length,
                 s.virtual_queue_length, s.gap_sum)
                for s in result.trace.slot_samples
            ],
            comm=(result.comm_bytes_mb, result.comm_failures),
            soc=list(result.final_battery_soc),
        )

    @FUZZ_SETTINGS
    @given(
        num_users=st.integers(2, 5),
        total_slots=st.integers(60, 160),
        arrival_prob=st.sampled_from([0.0, 0.005, 0.02, 0.05]),
        seed=st.integers(0, 2**16),
        train_samples=st.integers(120, 240),
        policy_name=st.sampled_from(["online", "sync", "immediate"]),
    )
    def test_all_execution_modes_agree_bitwise(
        self, num_users, total_slots, arrival_prob, seed, train_samples, policy_name
    ):
        from repro.core.online import OnlinePolicy
        from repro.core.policies import ImmediatePolicy, SyncPolicy
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import SimulationEngine
        from repro.sim.shard import ShardedEngine

        config = SimulationConfig(
            num_users=num_users,
            total_slots=total_slots,
            app_arrival_prob=arrival_prob,
            seed=seed,
            num_train_samples=train_samples,
            num_test_samples=80,
            hidden_dims=(8,),
            eval_interval_slots=50,
            trace_interval_slots=20,
            class_separation=2.5,
            clusters_per_class=1,
            label_noise=0.0,
            learning_rate=0.05,
        )

        def policy():
            if policy_name == "sync":
                return SyncPolicy()
            if policy_name == "immediate":
                return ImmediatePolicy()
            return OnlinePolicy(
                v=4000.0, staleness_bound=500.0, epsilon=0.01, distributed=True
            )

        reference = self._digest(
            SimulationEngine(config, policy(), backend="loop").run()
        )
        others = {
            "fleet": SimulationEngine(
                config, policy(), backend="fleet", fast_forward=False
            ),
            "fleet+ff": SimulationEngine(
                config, policy(), backend="fleet", fast_forward=True
            ),
            "2-shard": ShardedEngine(config, policy(), shards=2, inline=True),
            "3-shard": ShardedEngine(config, policy(), shards=3, inline=True),
        }
        for name, engine in others.items():
            observed = self._digest(engine.run())
            for key, want in reference.items():
                assert observed[key] == want, (
                    f"{name} diverged from the loop reference on {key} "
                    f"(users={num_users} slots={total_slots} "
                    f"arrivals={arrival_prob} seed={seed} policy={policy_name})"
                )


class TestOptimizerProperties:
    @DEFAULT_SETTINGS
    @given(st.floats(0.001, 0.5), st.floats(0.0, 0.98), st.integers(1, 5))
    def test_flat_round_trip_preserved_by_optimizer(self, lr, beta, steps):
        model = build_mlp(input_dim=6, hidden_dims=(5,), num_classes=3, seed=0)
        optimizer = MomentumSGD(learning_rate=lr, momentum=beta)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 6))
        y = rng.integers(0, 3, size=12)
        for _ in range(steps):
            model.train_step_gradients(x, y)
            params = optimizer.step(model)
            assert np.all(np.isfinite(params))
        # The flat view and the layer parameters agree.
        assert np.allclose(model.get_flat_params(), params)
