"""reprolint: fixture-verified rule behaviour plus the repo-wide self-check.

Each rule gets three fixtures: a positive snippet it must flag, a clean
snippet it must pass, and a suppressed snippet where ``# reprolint:
allow(<rule>)`` (or ``# reprolint: static`` for checkpoint coverage)
silences the finding.  The self-check test then runs the full rule set
over the shipped ``src/`` tree — the same invocation CI performs — and
asserts it exits clean, so any new violation fails the suite with the
finding text in the assertion message.

Also pinned here: the ``arrivals`` cache-key regression (the id()-keyed
cache the id-key rule was written to catch) and the alignment between
``CoordinatorState._FIELDS`` and ``CouplingCore._CHECKPOINT_ATTRS`` that
the checkpoint-coverage rule relies on.
"""

import json
import io
import textwrap
from pathlib import Path

import pytest

from repro.tools.reprolint import (
    Finding,
    LintConfig,
    default_rules,
    format_json,
    format_text,
    lint_paths,
)
from repro.tools.reprolint.cli import run as reprolint_run

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def lint_snippet(tmp_path, code, rules=None, name="snippet.py"):
    """Write ``code`` to a temp module and lint it with the given rules."""
    module = tmp_path / name
    module.write_text(textwrap.dedent(code), encoding="utf-8")
    return lint_paths([str(module)], rules or default_rules(), LintConfig())


def rule_ids(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# wall-clock
# ---------------------------------------------------------------------------


class TestWallClock:
    def test_flags_time_time(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()
            """)
        assert rule_ids(findings) == ["wall-clock"]
        assert "time.time" in findings[0].message

    def test_flags_datetime_now_and_aliased_import(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import datetime as dt
            from time import perf_counter

            def stamp():
                return dt.datetime.now(), perf_counter()
            """)
        assert rule_ids(findings) == ["wall-clock", "wall-clock"]

    def test_clean_sim_clock_passes(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def sim_time(slot, slot_seconds):
                return slot * slot_seconds
            """)
        assert findings == []

    def test_suppression_honored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()  # reprolint: allow(wall-clock): job metadata only
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# global-rng
# ---------------------------------------------------------------------------


class TestGlobalRng:
    def test_flags_random_module(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random

            def draw():
                return random.random()
            """)
        assert rule_ids(findings) == ["global-rng"]

    def test_flags_legacy_numpy_random(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            def draw():
                return np.random.rand(3)
            """)
        assert rule_ids(findings) == ["global-rng"]

    def test_clean_generator_api_passes(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.random(3)
            """)
        assert findings == []

    def test_suppression_honored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random

            def jitter():
                return random.random()  # reprolint: allow(global-rng): test-only jitter
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# set-iteration
# ---------------------------------------------------------------------------


class TestSetIteration:
    def test_flags_for_over_set_literal(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def fold(values):
                total = 0.0
                for v in {1.0, 2.0, 3.0}:
                    total += v
                return total
            """)
        assert rule_ids(findings) == ["set-iteration"]

    def test_flags_sum_over_set_call(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def fold(values):
                return sum(set(values))
            """)
        assert rule_ids(findings) == ["set-iteration"]

    def test_flags_comprehension_over_set_union(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def fold(a, b):
                return [x * 2.0 for x in set(a) | set(b)]
            """)
        assert rule_ids(findings) == ["set-iteration"]

    def test_clean_sorted_iteration_passes(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def fold(values):
                total = 0.0
                for v in sorted(set(values)):
                    total += v
                return total
            """)
        assert findings == []

    def test_suppression_honored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def fold(values):
                return sum(set(values))  # reprolint: allow(set-iteration): ints, exact
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# id-key
# ---------------------------------------------------------------------------


class TestIdKey:
    def test_flags_id_keyed_cache(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def cache_key(obj):
                return id(obj)
            """)
        assert rule_ids(findings) == ["id-key"]

    def test_clean_object_key_passes(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def cache_key(obj):
                return obj
            """)
        assert findings == []

    def test_suppression_honored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def cache_key(obj, live):
                return id(obj)  # reprolint: allow(id-key): live list pins obj
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# lock-guard
# ---------------------------------------------------------------------------

# The positive fixture reproduces the PR-6 race class: a guarded set is
# mutated outside the lock that the declaration names.
LOCK_VIOLATION = """
    import threading


    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._running = set()  # guarded-by: _lock

        def start(self, job_id):
            self._running.add(job_id)
    """

LOCK_CLEAN = """
    import threading


    class Service:
        def __init__(self):
            self._lock = threading.Lock()
            self._running = set()  # guarded-by: _lock

        def start(self, job_id):
            with self._lock:
                self._running.add(job_id)
    """


class TestLockGuard:
    def test_flags_unlocked_access(self, tmp_path):
        findings = lint_snippet(tmp_path, LOCK_VIOLATION)
        assert rule_ids(findings) == ["lock-guard"]
        assert "_running" in findings[0].message
        assert "_lock" in findings[0].message

    def test_clean_locked_access_passes(self, tmp_path):
        findings = lint_snippet(tmp_path, LOCK_CLEAN)
        assert findings == []

    def test_nested_function_does_not_inherit_lock(self, tmp_path):
        # A closure may outlive the with-block, so the held-lock set resets
        # inside nested defs: this access must still be flagged.
        findings = lint_snippet(tmp_path, """
            import threading


            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._running = set()  # guarded-by: _lock

                def start(self, job_id):
                    with self._lock:
                        def worker():
                            self._running.add(job_id)
                        return worker
            """)
        assert rule_ids(findings) == ["lock-guard"]

    def test_init_declaration_itself_is_not_flagged(self, tmp_path):
        # The declaring assignment in __init__ runs before the object is
        # shared, so only post-construction access needs the lock.
        findings = lint_snippet(tmp_path, """
            import threading


            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._running = set()  # guarded-by: _lock
            """)
        assert findings == []

    def test_suppression_honored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import threading


            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._running = set()  # guarded-by: _lock

                def debug_size(self):
                    return len(self._running)  # reprolint: allow(lock-guard): racy read ok
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# checkpoint-coverage
# ---------------------------------------------------------------------------


class TestCheckpointCoverage:
    def test_flags_uncovered_mutable_attr(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class Engine:
                def __init__(self):
                    self.slot = 0
                    self.history = []

                def state_dict(self):
                    return {"slot": self.slot}
            """)
        assert rule_ids(findings) == ["checkpoint-coverage"]
        assert "history" in findings[0].message

    def test_clean_fully_covered_class_passes(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class Engine:
                def __init__(self):
                    self.slot = 0
                    self.history = []

                def state_dict(self):
                    return {"slot": self.slot, "history": list(self.history)}
            """)
        assert findings == []

    def test_declared_attrs_tuple_counts_as_coverage(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class Engine:
                _CHECKPOINT_ATTRS = ("slot", "history")

                def __init__(self):
                    self.slot = 0
                    self.history = []

                def state_dict(self):
                    return {}
            """)
        assert findings == []

    def test_static_exemption_honored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class Engine:
                def __init__(self, config):
                    self.config = config  # reprolint: static
                    self.slot = 0

                def state_dict(self):
                    return {"slot": self.slot}
            """)
        assert findings == []

    def test_class_without_contract_is_ignored(self, tmp_path):
        # Only classes opting into the checkpoint contract are audited.
        findings = lint_snippet(tmp_path, """
            class Plain:
                def __init__(self):
                    self.anything = []
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# unbounded-blocking
# ---------------------------------------------------------------------------


class TestUnboundedBlocking:
    def test_flags_recv_and_bare_get_join(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def drain(conn, queue, proc):
                payload = conn.recv()
                item = queue.get()
                proc.join()
                return payload, item
            """)
        assert rule_ids(findings) == ["unbounded-blocking"] * 3
        assert ".recv()" in findings[0].message
        assert "timeout=" in findings[1].message

    def test_flags_recv_even_with_arguments(self, tmp_path):
        # socket.recv(bufsize) still blocks forever on a dead peer.
        findings = lint_snippet(tmp_path, """
            def read(sock):
                return sock.recv(4096)
            """)
        assert rule_ids(findings) == ["unbounded-blocking"]

    def test_clean_bounded_calls_pass(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def bounded(queue, proc, record, parts):
                item = queue.get(timeout=5.0)
                proc.join(timeout=10.0)
                proc.join(10.0)
                state = record.get("state")
                return item, state, ",".join(parts)
            """)
        assert findings == []

    def test_suppression_honored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def drain(conn):
                if conn.poll(1.0):
                    return conn.recv()  # reprolint: allow(unbounded-blocking): poll-guarded
                return None
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# shm-lifecycle
# ---------------------------------------------------------------------------


class TestShmLifecycle:
    def test_flags_create_without_cleanup(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from multiprocessing import shared_memory

            def make(name, size):
                shm = shared_memory.SharedMemory(name=name, create=True, size=size)
                return shm
            """)
        assert rule_ids(findings) == ["shm-lifecycle"]
        assert "close()" in findings[0].message
        assert "unlink()" in findings[0].message

    def test_flags_attach_without_exception_path(self, tmp_path):
        # close() on the happy path only: an exception between attach and
        # close still leaks the mapping.
        findings = lint_snippet(tmp_path, """
            from multiprocessing.shared_memory import SharedMemory

            def peek(name):
                shm = SharedMemory(name=name)
                data = bytes(shm.buf[:8])
                shm.close()
                return data
            """)
        assert rule_ids(findings) == ["shm-lifecycle"]
        assert "unlink()" not in findings[0].message  # attach only needs close

    def test_flags_module_level_construction(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from multiprocessing.shared_memory import SharedMemory

            SEGMENT = SharedMemory(name="fixture", create=True, size=64)
            """)
        assert rule_ids(findings) == ["shm-lifecycle"]
        assert "module-level" in findings[0].message

    def test_clean_guarded_lifecycles_pass(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from multiprocessing.shared_memory import SharedMemory

            def create(name, size):
                shm = SharedMemory(name=name, create=True, size=size)
                try:
                    return wrap(shm)
                except BaseException:
                    shm.close()
                    shm.unlink()
                    raise

            def attach(name):
                shm = SharedMemory(name=name)
                try:
                    return bytes(shm.buf[:8])
                finally:
                    shm.close()
            """)
        assert findings == []

    def test_destroy_counts_for_both(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from multiprocessing.shared_memory import SharedMemory

            def create(mailbox_cls, name, size):
                shm = SharedMemory(name=name, create=True, size=size)
                box = mailbox_cls(shm)
                try:
                    box.fill()
                except Exception:
                    box.destroy()
                    raise
                return box
            """)
        assert findings == []

    def test_suppression_honored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from multiprocessing.shared_memory import SharedMemory

            def handoff(registry, name):
                shm = SharedMemory(name=name)  # reprolint: allow(shm-lifecycle): registry owns teardown
                registry.adopt(shm)
                return shm
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# framework behaviour
# ---------------------------------------------------------------------------


class TestFramework:
    def test_parse_error_becomes_finding(self, tmp_path):
        findings = lint_snippet(tmp_path, "def broken(:\n")
        assert rule_ids(findings) == ["parse-error"]

    def test_config_disable_drops_rule(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("import time\nx = time.time()\n", encoding="utf-8")
        config = LintConfig(disable=["wall-clock"])
        assert lint_paths([str(module)], default_rules(), config) == []

    def test_config_exclude_skips_file(self, tmp_path):
        module = tmp_path / "generated.py"
        module.write_text("import time\nx = time.time()\n", encoding="utf-8")
        config = LintConfig(exclude=["*generated.py"])
        assert lint_paths([str(tmp_path)], default_rules(), config) == []

    def test_findings_sorted_and_formatted(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(
            "import time\nb = time.time()\na = time.time()\n", encoding="utf-8"
        )
        findings = lint_paths([str(module)], default_rules(), LintConfig())
        assert [f.line for f in findings] == [2, 3]
        text = format_text(findings)
        assert "reprolint: 2 findings" in text
        assert f"{module}:2:" in text

    def test_json_format_round_trips(self):
        findings = [Finding(rule="wall-clock", path="x.py", line=3, message="no")]
        payload = json.loads(format_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0] == {
            "rule": "wall-clock", "path": "x.py", "line": 3, "message": "no",
        }

    def test_wildcard_allow_suppresses_everything(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import time

            def stamp():
                return time.time()  # reprolint: allow(*): fixture
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path):
        module = tmp_path / "clean.py"
        module.write_text("x = 1\n", encoding="utf-8")
        out = io.StringIO()
        assert reprolint_run([str(module), "--no-config"], stdout=out) == 0
        assert "reprolint: clean" in out.getvalue()

    def test_exit_one_on_findings(self, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text("import time\nx = time.time()\n", encoding="utf-8")
        out = io.StringIO()
        assert reprolint_run([str(module), "--no-config"], stdout=out) == 1
        assert "[wall-clock]" in out.getvalue()

    def test_exit_two_on_unknown_rule(self, tmp_path):
        out = io.StringIO()
        code = reprolint_run([str(tmp_path), "--rule", "no-such-rule"], stdout=out)
        assert code == 2

    def test_rule_filter_limits_scope(self, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text(
            "import time\nx = time.time()\ny = id(x)\n", encoding="utf-8"
        )
        out = io.StringIO()
        code = reprolint_run(
            [str(module), "--no-config", "--rule", "id-key"], stdout=out
        )
        assert code == 1
        assert "[id-key]" in out.getvalue()
        assert "[wall-clock]" not in out.getvalue()

    def test_json_output(self, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text("import time\nx = time.time()\n", encoding="utf-8")
        out = io.StringIO()
        reprolint_run([str(module), "--no-config", "--format", "json"], stdout=out)
        payload = json.loads(out.getvalue())
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "wall-clock"

    def test_list_rules_names_full_catalog(self):
        out = io.StringIO()
        assert reprolint_run(["--list-rules"], stdout=out) == 0
        listing = out.getvalue()
        for rule in default_rules():
            assert rule.id in listing

    def test_repro_sim_lint_subcommand(self, tmp_path):
        from repro.cli import main as repro_main

        module = tmp_path / "dirty.py"
        module.write_text("import time\nx = time.time()\n", encoding="utf-8")
        assert repro_main(["lint", str(module), "--no-config"]) == 1
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert repro_main(["lint", str(clean), "--rule", "wall-clock"]) == 0


# ---------------------------------------------------------------------------
# The shipped tree honours its own contract
# ---------------------------------------------------------------------------


class TestSelfCheck:
    def test_src_tree_is_clean(self):
        findings = lint_paths([str(SRC)], default_rules(), LintConfig())
        assert findings == [], format_text(findings)

    def test_cli_self_check_exit_code(self):
        out = io.StringIO()
        assert reprolint_run([str(SRC), "--no-config"], stdout=out) == 0


# ---------------------------------------------------------------------------
# Regressions the rules were written to catch
# ---------------------------------------------------------------------------


class TestArrivalsCacheKeyRegression:
    """The id()-keyed probability cache the id-key rule flagged.

    ``id()`` values can be reused once an object is garbage collected, so
    two distinct custom processes could silently share cached probability
    vectors.  The fix keys unknown process types on the object itself —
    the cache entry then pins the object, making key reuse impossible.
    """

    def test_unknown_process_keyed_on_object_identity(self):
        from repro.sim.arrivals import _process_probability_key

        class CustomProcess:
            def probability_at(self, slot, slot_seconds):
                return 0.5

        a, b = CustomProcess(), CustomProcess()
        assert _process_probability_key(a) is a
        assert _process_probability_key(a) != _process_probability_key(b)

    def test_equal_parameter_processes_share_key(self):
        from repro.sim.arrivals import (
            BernoulliArrivalProcess,
            _process_probability_key,
        )

        a = BernoulliArrivalProcess(0.25)
        b = BernoulliArrivalProcess(0.25)
        assert _process_probability_key(a) == _process_probability_key(b)


class TestCheckpointDeclarationAlignment:
    """_CHECKPOINT_ATTRS (lint contract) must track _FIELDS (runtime contract).

    ``CoordinatorState._FIELDS`` names the snapshot fields without the
    attribute's leading underscore (``eval_cache`` for ``_eval_cache``);
    the lint declaration uses the attribute spelling.  Keep them in sync
    or a checkpointed attribute could silently drop out of the snapshot.
    """

    def test_fields_and_checkpoint_attrs_align(self):
        from repro.service.checkpoint import CoordinatorState
        from repro.sim.coupling import CouplingCore

        declared = {attr.lstrip("_") for attr in CouplingCore._CHECKPOINT_ATTRS}
        assert declared == set(CoordinatorState._FIELDS)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
