"""Tests for the parallel experiment suite (``repro.analysis.runner``).

Covers the three properties the orchestration layer promises:

* **cache** — a finished spec's summary lands on disk under its config
  hash; rerunning the grid serves it from cache without simulating;
* **determinism across workers** — ``jobs=1`` and ``jobs=2`` produce the
  same summaries for the same specs (workers rebuild the seed-determined
  dataset, so parallelism changes wall-clock only);
* **spec hashing** — the hash depends on what is simulated (policy,
  config, backend), not on presentation details like the label.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.runner import (
    ExperimentSuite,
    RunSpec,
    RunSummary,
    make_policy,
    run_spec,
    summarize_result,
    sweep_grid,
)
from repro.core.online import OnlinePolicy
from repro.core.policies import ImmediatePolicy

#: A seconds-scale configuration for every runner test.
SMOKE_CONFIG = dict(
    num_users=6,
    total_slots=150,
    app_arrival_prob=0.01,
    seed=0,
    num_train_samples=300,
    num_test_samples=150,
    eval_interval_slots=150,
)


def _smoke_spec(policy="online", v=4000.0, seed=0, label=None) -> RunSpec:
    config = dict(SMOKE_CONFIG, seed=seed)
    kwargs = {"v": v, "staleness_bound": 500.0} if policy == "online" else {}
    return RunSpec(policy=policy, policy_kwargs=kwargs, config=config, label=label)


class TestRunSpec:
    def test_hash_is_stable_and_label_independent(self):
        a = _smoke_spec(label="pretty name")
        b = _smoke_spec(label=None)
        assert a.config_hash() == b.config_hash()
        assert len(a.config_hash()) == 16

    def test_hash_changes_with_simulated_content(self):
        base = _smoke_spec()
        assert base.config_hash() != _smoke_spec(v=0.0).config_hash()
        assert base.config_hash() != _smoke_spec(seed=1).config_hash()
        assert base.config_hash() != _smoke_spec(policy="immediate").config_hash()
        loop_backend = _smoke_spec()
        loop_backend.backend = "loop"
        assert base.config_hash() != loop_backend.config_hash()

    def test_build_helpers(self):
        spec = _smoke_spec()
        assert isinstance(spec.build_policy(), OnlinePolicy)
        assert spec.build_config().num_users == SMOKE_CONFIG["num_users"]
        assert isinstance(_smoke_spec(policy="immediate").build_policy(), ImmediatePolicy)
        assert spec.display_name() == "online(staleness_bound=500.0,v=4000.0)"

    def test_make_policy_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            make_policy("round-robin")


class TestExperimentSuiteCache:
    def test_miss_then_hit(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        spec = _smoke_spec()
        suite = ExperimentSuite(cache_dir=cache_dir, jobs=1)

        first = suite.run([spec])[0]
        assert not first.from_cache
        assert os.path.exists(os.path.join(cache_dir, f"{spec.config_hash()}.json"))

        # A second suite must serve the summary from disk without simulating.
        def _boom(_spec):
            raise AssertionError("cache hit should not re-run the simulation")

        monkeypatch.setattr("repro.analysis.runner._execute_summary", _boom)
        second = ExperimentSuite(cache_dir=cache_dir, jobs=1).run([spec])[0]
        assert second.from_cache
        assert second.energy_j == first.energy_j
        assert second.spec_hash == first.spec_hash

    def test_refresh_overrides_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = _smoke_spec()
        suite = ExperimentSuite(cache_dir=cache_dir, jobs=1)
        first = suite.run([spec])[0]
        refreshed = suite.run([spec], refresh=True)[0]
        assert not refreshed.from_cache
        assert refreshed.energy_j == first.energy_j

    def test_corrupt_cache_entry_falls_back_to_running(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = _smoke_spec()
        os.makedirs(cache_dir)
        with open(os.path.join(cache_dir, f"{spec.config_hash()}.json"), "w") as handle:
            handle.write("{not json")
        summary = ExperimentSuite(cache_dir=cache_dir, jobs=1).run([spec])[0]
        assert not summary.from_cache
        assert summary.energy_j > 0.0

    def test_summary_json_roundtrip(self):
        spec = _smoke_spec(policy="immediate")
        summary = summarize_result(spec, run_spec(spec), wall_time_s=1.5)
        assert RunSummary.from_json(summary.to_json()) == summary


class TestExperimentSuiteDeterminism:
    def test_same_summaries_across_worker_counts(self):
        """jobs=1 and jobs=2 must agree field-for-field on every summary."""
        specs = [
            _smoke_spec(policy="immediate"),
            _smoke_spec(v=0.0),
            _smoke_spec(v=4000.0),
        ]
        sequential = ExperimentSuite(jobs=1).run(specs)
        parallel = ExperimentSuite(jobs=2).run(specs)
        for seq, par in zip(sequential, parallel):
            # Wall time (and the derived timing shares) legitimately
            # differs between processes.
            seq = RunSummary(**{**seq.__dict__, "wall_time_s": 0.0, "timing_shares": None})
            par = RunSummary(**{**par.__dict__, "wall_time_s": 0.0, "timing_shares": None})
            assert seq == par

    def test_map_results_preserves_order_and_determinism(self):
        specs = [_smoke_spec(v=0.0), _smoke_spec(v=4000.0)]
        sequential = ExperimentSuite(jobs=1).map_results(specs)
        parallel = ExperimentSuite(jobs=2).map_results(specs)
        for seq, par in zip(sequential, parallel):
            assert seq.total_energy_j() == par.total_energy_j()
            assert seq.trace.slot_samples == par.trace.slot_samples
            assert seq.num_updates == par.num_updates
        # Order: V=0 schedules everything it can, V=4000 defers — the first
        # result must belong to the eager run.
        assert sequential[0].total_energy_j() >= sequential[1].total_energy_j()


class TestSweepGrid:
    def test_grid_shape(self):
        specs = sweep_grid(
            v_values=(0.0, 4000.0),
            policies=("online", "immediate"),
            seeds=(0, 1),
            arrival_probs=(None, 0.01),
            base_config=SMOKE_CONFIG,
        )
        # online: 2 V x 2 seeds x 2 probs = 8; immediate: 2 seeds x 2 probs = 4.
        assert len(specs) == 12
        online = [s for s in specs if s.policy == "online"]
        assert len(online) == 8
        assert all(s.config["num_users"] == SMOKE_CONFIG["num_users"] for s in specs)
        # ``None`` keeps the base arrival probability; explicit values override.
        probs = {s.config["app_arrival_prob"] for s in specs}
        assert probs == {SMOKE_CONFIG["app_arrival_prob"], 0.01}

    def test_all_specs_unique(self):
        specs = sweep_grid(v_values=(0.0, 4000.0), seeds=(0, 1), base_config=SMOKE_CONFIG)
        hashes = [s.config_hash() for s in specs]
        assert len(set(hashes)) == len(hashes)


class TestCacheInvalidation:
    """The disk cache must not serve summaries simulated by different code."""

    def test_hash_changes_with_package_version(self, monkeypatch):
        spec = _smoke_spec()
        before = spec.config_hash()
        monkeypatch.setattr("repro.analysis.runner.REPRO_VERSION", "999.0.0-test")
        assert spec.config_hash() != before

    def test_hash_changes_with_backend_and_fast_forward(self):
        spec = _smoke_spec()
        loop = RunSpec(
            policy=spec.policy,
            policy_kwargs=spec.policy_kwargs,
            config=spec.config,
            backend="loop",
        )
        no_ff = RunSpec(
            policy=spec.policy,
            policy_kwargs=spec.policy_kwargs,
            config=spec.config,
            fast_forward=False,
        )
        hashes = {spec.config_hash(), loop.config_hash(), no_ff.config_hash()}
        assert len(hashes) == 3

    def test_version_bump_invalidates_disk_entries(self, tmp_path, monkeypatch):
        """A cached summary from an older package version is never served."""
        suite = ExperimentSuite(cache_dir=str(tmp_path), jobs=1)
        spec = _smoke_spec()
        first = suite.run([spec])[0]
        assert not first.from_cache
        assert suite.run([spec])[0].from_cache
        # Simulate upgrading the package: same spec, new code.
        monkeypatch.setattr("repro.analysis.runner.REPRO_VERSION", "999.0.0-test")
        refreshed = suite.run([spec])[0]
        assert not refreshed.from_cache
        assert refreshed.spec_hash != first.spec_hash

    def test_execution_modes_agree_on_summaries(self, tmp_path):
        """Backend/fast-forward keys differ but simulate identical systems."""
        suite = ExperimentSuite(cache_dir=str(tmp_path), jobs=1)
        ff_spec = _smoke_spec()
        slot_spec = RunSpec(
            policy=ff_spec.policy,
            policy_kwargs=ff_spec.policy_kwargs,
            config=ff_spec.config,
            fast_forward=False,
        )
        ff, slot = suite.run([ff_spec, slot_spec])
        assert ff.energy_j == slot.energy_j
        assert ff.num_updates == slot.num_updates
        assert ff.mean_virtual_queue_length == slot.mean_virtual_queue_length

    def test_hash_changes_with_shards_and_trace_level(self):
        """Shard count and telemetry level are cache keys (never silently
        serve a summary simulated by a different engine/telemetry mode)."""
        base = _smoke_spec()
        sharded = RunSpec(
            policy=base.policy,
            policy_kwargs=base.policy_kwargs,
            config=base.config,
            shards=2,
        )
        summary_level = RunSpec(
            policy=base.policy,
            policy_kwargs=base.policy_kwargs,
            config=base.config,
            trace_level="summary",
        )
        hashes = {
            base.config_hash(),
            sharded.config_hash(),
            summary_level.config_hash(),
        }
        assert len(hashes) == 3

    def test_sharded_spec_summary_matches_single_process(self, tmp_path):
        """shards=2 through the suite yields the single-process summary."""
        suite = ExperimentSuite(cache_dir=str(tmp_path), jobs=1)
        single = _smoke_spec()
        sharded = RunSpec(
            policy=single.policy,
            policy_kwargs=single.policy_kwargs,
            config=single.config,
            shards=2,
        )
        a, b = suite.run([single, sharded])
        assert a.energy_j == b.energy_j
        assert a.num_updates == b.num_updates
        assert a.final_accuracy == b.final_accuracy
        assert a.mean_queue_length == b.mean_queue_length
        assert a.mean_virtual_queue_length == b.mean_virtual_queue_length
        assert a.schedule_fraction == b.schedule_fraction
        assert a.comm_bytes_mb == b.comm_bytes_mb
        # Both cached under their own keys afterwards.
        assert all(s.from_cache for s in suite.run([single, sharded]))

    def test_sharded_spec_rejects_loop_backend(self):
        spec = RunSpec(policy="immediate", config=dict(SMOKE_CONFIG),
                       backend="loop", shards=2)
        with pytest.raises(ValueError, match="sharded execution"):
            run_spec(spec)
