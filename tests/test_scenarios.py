"""Scenario subsystem: spec DSL, cohort compiler, registry, runner, CLI.

Covers the subsystem's contracts:

* compilation is deterministic (same spec + seed → identical per-user
  assignments) and lowers homogeneous specs to pure global knobs;
* the canonical spec hash is stable under dict-ordering noise and changes
  with any cohort parameter;
* scenario runs cache under the compiled content hash and invalidate when
  the spec changes;
* ``paper-baseline`` reproduces the default-config run bit for bit;
* heterogeneous per-user configs keep the loop/fleet/fast-forward backends
  bitwise-equivalent.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.policies import ImmediatePolicy
from repro.core.online import OnlinePolicy
from repro.scenarios import (
    BUILTIN_SCENARIO_NAMES,
    CHARGING_PERSONAS,
    CohortSpec,
    ScenarioRunner,
    ScenarioSpec,
    cohort_sizes,
    compile_scenario,
    get_scenario,
    list_scenarios,
    load_scenario_file,
    register_scenario,
    scenario_run_spec,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine


def _two_cohort_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="test-duo",
        num_users=10,
        total_slots=400,
        cohorts=(
            CohortSpec(
                name="flagship",
                fraction=0.6,
                device_mix={"pixel2": 1.0},
                wifi_fraction=1.0,
                battery={"persona": "overnight-charger"},
            ),
            CohortSpec(
                name="budget",
                fraction=0.4,
                device_mix={"nexus6": 1.0},
                arrival={"kind": "bernoulli", "probability": 0.004},
                data_alpha=0.2,
            ),
        ),
        seed=5,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestCohortSizes:
    def test_largest_remainder_exact(self):
        assert cohort_sizes([0.5, 0.5], 10) == [5, 5]
        assert cohort_sizes([0.6, 0.4], 10) == [6, 4]
        assert sum(cohort_sizes([0.55, 0.25, 0.15, 0.05], 1000)) == 1000

    def test_every_cohort_gets_a_user(self):
        sizes = cohort_sizes([0.97, 0.01, 0.01, 0.01], 5)
        assert sum(sizes) == 5
        assert all(size >= 1 for size in sizes)

    def test_more_cohorts_than_users_rejected(self):
        with pytest.raises(ValueError):
            cohort_sizes([0.5, 0.3, 0.2], 2)


class TestSpecValidation:
    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown devices"):
            CohortSpec(name="x", fraction=1.0, device_mix={"iphone15": 1.0})

    def test_bad_arrival_kind_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            CohortSpec(name="x", fraction=1.0, arrival={"kind": "poisson"})

    def test_unknown_persona_rejected(self):
        with pytest.raises(ValueError, match="persona"):
            CohortSpec(name="x", fraction=1.0, battery={"persona": "solar"})

    def test_duplicate_cohort_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ScenarioSpec(
                name="dup",
                cohorts=(
                    CohortSpec(name="a", fraction=0.5),
                    CohortSpec(name="a", fraction=0.5),
                ),
            )

    def test_reserved_base_overrides_rejected(self):
        with pytest.raises(ValueError, match="owned by the scenario"):
            ScenarioSpec(
                name="bad",
                cohorts=(CohortSpec(name="a", fraction=1.0),),
                base={"num_users": 99},
            )

    def test_personas_resolve(self):
        for persona in CHARGING_PERSONAS:
            cohort = CohortSpec(name="x", fraction=1.0, battery={"persona": persona})
            assert cohort.battery is not None


class TestSpecHash:
    def test_equal_specs_hash_equally(self):
        assert _two_cohort_spec().spec_hash() == _two_cohort_spec().spec_hash()

    def test_hash_survives_dict_round_trip(self):
        spec = _two_cohort_spec()
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.spec_hash() == spec.spec_hash()
        assert rebuilt == spec

    def test_any_cohort_change_changes_hash(self):
        base = _two_cohort_spec().spec_hash()
        assert _two_cohort_spec(seed=6).spec_hash() != base
        assert _two_cohort_spec(total_slots=500).spec_hash() != base
        changed = _two_cohort_spec()
        cohorts = list(changed.cohorts)
        cohorts[1] = CohortSpec(
            name="budget",
            fraction=0.4,
            device_mix={"nexus6": 1.0},
            arrival={"kind": "bernoulli", "probability": 0.005},  # 0.004 -> 0.005
            data_alpha=0.2,
        )
        assert changed.scaled(cohorts=tuple(cohorts)).spec_hash() != base


class TestCompiler:
    def test_compilation_is_deterministic(self):
        first = compile_scenario(_two_cohort_spec())
        second = compile_scenario(_two_cohort_spec())
        assert first.overrides == second.overrides
        assert first.sizes == second.sizes
        assert first.cohort_of == second.cohort_of

    def test_cohort_blocks_are_contiguous(self):
        compiled = compile_scenario(_two_cohort_spec())
        assert compiled.sizes == [6, 4]
        assert compiled.users_of("flagship") == list(range(6))
        assert compiled.users_of("budget") == list(range(6, 10))
        assert compiled.device_names[:6] == ["pixel2"] * 6
        assert compiled.device_names[6:] == ["nexus6"] * 4

    def test_dimension_lowering(self):
        compiled = compile_scenario(_two_cohort_spec())
        overrides = compiled.overrides
        # Arrivals: only budget pins them; flagship inherits the default.
        assert overrides["user_arrivals"][0] == {
            "kind": "bernoulli",
            "probability": 0.001,
        }
        assert overrides["user_arrivals"][6] == {
            "kind": "bernoulli",
            "probability": 0.004,
        }
        # Battery: flagship has the persona, budget has none.
        capacity, rate = CHARGING_PERSONAS["overnight-charger"]
        assert overrides["user_battery_capacity_j"][0] == capacity
        assert overrides["user_charge_rate_w"][0] == rate
        assert overrides["user_battery_capacity_j"][6] is None
        # Data skew: only budget is skewed.
        assert overrides["user_data_alpha"][0] is None
        assert overrides["user_data_alpha"][6] == 0.2
        # Wi-Fi: flagship pinned to all-wifi.
        assert all(overrides["user_wifi"][:6])

    def test_wifi_fraction_is_deterministic_count(self):
        """wifi_fraction is a fraction of the cohort, not a per-user coin flip."""
        spec = ScenarioSpec(
            name="wifi-count",
            num_users=20,
            total_slots=100,
            cohorts=(
                CohortSpec(name="mostly", fraction=0.5, wifi_fraction=0.7),
                CohortSpec(name="rarely", fraction=0.5, wifi_fraction=0.1),
            ),
        )
        compiled = compile_scenario(spec)
        assert sum(compiled.user_wifi[:10]) == 7
        assert sum(compiled.user_wifi[10:]) == 1

    def test_default_cohort_inherits_base_diurnal_arrivals(self):
        """base diurnal_arrivals=True must survive per-user arrival lowering."""
        spec = ScenarioSpec(
            name="diurnal-base",
            num_users=8,
            total_slots=100,
            cohorts=(
                CohortSpec(
                    name="pinned",
                    fraction=0.5,
                    arrival={"kind": "trace", "slots": [3]},
                ),
                CohortSpec(name="inherits", fraction=0.5),
            ),
            base={"diurnal_arrivals": True, "app_arrival_prob": 0.002},
        )
        compiled = compile_scenario(spec)
        inherited = compiled.user_arrivals[-1]
        assert inherited["kind"] == "diurnal"
        assert inherited["peak_probability"] == pytest.approx(0.004)
        assert "diurnal_arrivals" not in compiled.overrides

    def test_negative_cohort_device_mix_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CohortSpec(
                name="x", fraction=1.0, device_mix={"pixel2": 1.5, "nexus6": -0.5}
            )

    def test_homogeneous_spec_lowers_to_global_knobs(self):
        spec = ScenarioSpec(
            name="plain",
            num_users=7,
            total_slots=123,
            cohorts=(CohortSpec(name="all", fraction=1.0),),
            seed=3,
        )
        compiled = compile_scenario(spec)
        assert compiled.overrides == {
            "num_users": 7,
            "total_slots": 123,
            "seed": 3,
        }
        assert compiled.device_names is None
        assert compiled.user_arrivals is None

    def test_overrides_are_json_serialisable(self):
        for name in BUILTIN_SCENARIO_NAMES:
            compiled = compile_scenario(get_scenario(name))
            rebuilt = json.loads(json.dumps(compiled.overrides))
            assert SimulationConfig(**rebuilt) == compiled.build_config()


class TestRegistry:
    def test_gallery_size_and_required_names(self):
        assert len(BUILTIN_SCENARIO_NAMES) >= 8
        for required in ("paper-baseline", "megafleet-1k"):
            assert required in BUILTIN_SCENARIO_NAMES

    def test_every_builtin_compiles(self):
        for spec in list_scenarios():
            compiled = compile_scenario(spec)
            assert sum(compiled.sizes) == spec.num_users
            compiled.build_config()  # must be a valid SimulationConfig

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_register_runtime_scenario(self):
        spec = _two_cohort_spec(name="runtime-test-scenario")
        register_scenario(spec, overwrite=True)
        assert get_scenario("runtime-test-scenario") == spec

    def test_builtin_names_protected(self):
        with pytest.raises(ValueError, match="built-in"):
            register_scenario(_two_cohort_spec(name="paper-baseline"))

    def test_json_file_round_trip(self, tmp_path):
        spec = _two_cohort_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert load_scenario_file(str(path)) == spec

    def test_toml_file_loads(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "toml-fleet"',
                    "num_users = 6",
                    "total_slots = 200",
                    "[[cohorts]]",
                    'name = "all"',
                    "fraction = 1.0",
                    "wifi_fraction = 0.5",
                ]
            )
        )
        spec = load_scenario_file(str(path))
        assert spec.name == "toml-fleet"
        assert spec.cohorts[0].wifi_fraction == 0.5

    def test_unknown_fields_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "x", "cohortz": []}))
        with pytest.raises(ValueError):
            load_scenario_file(str(path))


class TestPaperBaselineBitwise:
    def test_baseline_reproduces_default_config(self):
        """The acceptance contract: paper-baseline == hand-built default run."""
        spec = get_scenario("paper-baseline").scaled(total_slots=1200)
        compiled = compile_scenario(spec)
        scenario_result = SimulationEngine(
            compiled.build_config(), OnlinePolicy(v=4000.0, staleness_bound=500.0)
        ).run()
        default_result = SimulationEngine(
            SimulationConfig(total_slots=1200),
            OnlinePolicy(v=4000.0, staleness_bound=500.0),
        ).run()
        assert scenario_result.total_energy_j() == default_result.total_energy_j()
        assert scenario_result.num_updates == default_result.num_updates
        assert scenario_result.device_names == default_result.device_names
        assert scenario_result.queue_history == default_result.queue_history
        assert (
            scenario_result.accuracy.accuracies()
            == default_result.accuracy.accuracies()
        )
        assert [s.gap_sum for s in scenario_result.trace.slot_samples] == [
            s.gap_sum for s in default_result.trace.slot_samples
        ]
        assert [
            (s.time_s, s.user_id, s.lag, s.gradient_gap)
            for s in scenario_result.trace.update_samples
        ] == [
            (s.time_s, s.user_id, s.lag, s.gradient_gap)
            for s in default_result.trace.update_samples
        ]


class TestHeterogeneousBackendEquivalence:
    def test_loop_fleet_fastforward_bitwise(self):
        """Per-user heterogeneity preserves the cross-backend contract."""
        spec = _two_cohort_spec()
        config = compile_scenario(spec).build_config()
        results = {}
        for backend, fast_forward in (
            ("loop", False),
            ("fleet", False),
            ("fleet", True),
        ):
            result = SimulationEngine(
                config,
                OnlinePolicy(v=4000.0, staleness_bound=500.0),
                backend=backend,
                fast_forward=fast_forward,
            ).run()
            results[(backend, fast_forward)] = result
        reference = results[("loop", False)]
        for key, result in results.items():
            assert result.total_energy_j() == reference.total_energy_j(), key
            assert result.num_updates == reference.num_updates, key
            assert result.queue_history == reference.queue_history, key
            assert result.final_battery_soc == reference.final_battery_soc, key


class TestScenarioRunnerCache:
    def _runner(self, tmp_path) -> ScenarioRunner:
        return ScenarioRunner(cache_dir=str(tmp_path / "cache"), jobs=1)

    def test_second_run_served_from_cache(self, tmp_path):
        runner = self._runner(tmp_path)
        spec = _two_cohort_spec()
        first = runner.run_one(spec, policy="immediate")
        second = runner.run_one(spec, policy="immediate")
        assert not first.from_cache
        assert second.from_cache
        assert second.energy_j == first.energy_j

    def test_spec_change_invalidates_cache(self, tmp_path):
        """Any cohort-parameter change must miss the cache (new content hash)."""
        runner = self._runner(tmp_path)
        spec = _two_cohort_spec()
        runner.run_one(spec, policy="immediate")
        cohorts = list(spec.cohorts)
        cohorts[1] = CohortSpec(
            name="budget",
            fraction=0.4,
            device_mix={"nexus6": 1.0},
            arrival={"kind": "bernoulli", "probability": 0.008},
            data_alpha=0.2,
        )
        changed = spec.scaled(cohorts=tuple(cohorts))
        assert changed.spec_hash() != spec.spec_hash()
        rerun = runner.run_one(changed, policy="immediate")
        assert not rerun.from_cache

    def test_run_spec_hash_tracks_scenario_content(self):
        spec = _two_cohort_spec()
        assert (
            scenario_run_spec(spec, policy="online").config_hash()
            == scenario_run_spec(spec, policy="online").config_hash()
        )
        assert (
            scenario_run_spec(spec, policy="online").config_hash()
            != scenario_run_spec(spec.scaled(seed=9), policy="online").config_hash()
        )

    def test_cache_files_exist_on_disk(self, tmp_path):
        runner = self._runner(tmp_path)
        spec = _two_cohort_spec()
        summary = runner.run_one(spec, policy="immediate")
        path = os.path.join(str(tmp_path / "cache"), f"{summary.spec_hash}.json")
        assert os.path.exists(path)


class TestMixedPartitionBalance:
    def test_skewed_users_keep_their_data_share(self):
        """Low-alpha users get skewed *labels*, not starved shards."""
        import numpy as np

        from repro.fl.dataset import SyntheticCifar10, partition_mixed

        dataset = SyntheticCifar10(num_train=2000, num_test=100, seed=0)
        x, y = dataset.train_set()
        alphas = [0.05] * 12 + [None] * 12
        parts = partition_mixed(x, y, alphas, np.random.default_rng(0), num_classes=10)
        sizes = [len(p) for p in parts]
        # No starvation: every skewed user holds a real shard, and the two
        # halves hold the same share of the data in expectation.
        assert min(sizes[:12]) >= 5
        assert sum(sizes[:12]) >= 0.15 * 2000
        # The skew is in the label composition: entropy collapses for the
        # low-alpha users and stays near-uniform for the IID ones.
        def entropy(part):
            dist = part.label_distribution(10)
            dist = dist / dist.sum()
            nonzero = dist[dist > 0]
            return float(-(nonzero * np.log(nonzero)).sum())

        skewed = np.mean([entropy(p) for p in parts[:12]])
        balanced = np.mean([entropy(p) for p in parts[12:]])
        assert skewed < balanced - 0.5

    def test_uniform_alphas_match_dirichlet_family(self):
        import numpy as np

        from repro.fl.dataset import SyntheticCifar10, partition_mixed

        dataset = SyntheticCifar10(num_train=500, num_test=50, seed=1)
        x, y = dataset.train_set()
        parts = partition_mixed(x, y, [0.5] * 8, np.random.default_rng(2))
        assert sum(len(p) for p in parts) == 500
        assert all(len(p) >= 1 for p in parts)


class TestCarbonReporting:
    def test_annotate_carbon_from_summary(self, tmp_path):
        from repro.analysis.runner import annotate_carbon

        runner = ScenarioRunner(cache_dir=None, jobs=1)
        summary = runner.run_one(_two_cohort_spec(), policy="immediate")
        assert summary.carbon_g is None  # off by default
        annotate_carbon([summary], "world_average")
        expected = summary.energy_j / 3.6e6 * 475.0
        assert summary.carbon_g == pytest.approx(expected)
        annotate_carbon([summary], 100.0)
        assert summary.carbon_g == pytest.approx(summary.energy_j / 3.6e6 * 100.0)


class TestScenarioCli:
    def test_scenario_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_SCENARIO_NAMES:
            assert name in out

    def test_scenario_show(self, capsys):
        from repro.cli import main

        assert main(["scenario", "show", "overnight-chargers"]) == 0
        out = capsys.readouterr().out
        assert "chargers" in out and "spec_hash" in out

    def test_scenario_run_with_file_spec(self, capsys, tmp_path):
        from repro.cli import main

        spec = _two_cohort_spec(name="cli-file-test", total_slots=200, num_users=6)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "--spec-file",
                    str(path),
                    "--policy",
                    "immediate",
                    "--carbon-intensity",
                    "hydro",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cli-file-test" in out and "CO2 (g)" in out

    def test_scenario_requires_name_or_file(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["scenario", "run"])


class TestConfigValidation:
    def test_unknown_device_in_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown devices"):
            SimulationConfig(device_mix={"iphone15": 1.0})

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            SimulationConfig(device_mix={"pixel2": 0.7, "nexus6": 0.1})

    def test_negative_mix_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SimulationConfig(device_mix={"pixel2": 1.5, "nexus6": -0.5})

    def test_near_one_mix_accepted(self):
        thirds = {"pixel2": 1.0 / 3, "nexus6": 1.0 / 3, "nexus6p": 1.0 / 3}
        assert SimulationConfig(device_mix=thirds).device_mix == thirds

    def test_app_weights_length_checked(self):
        with pytest.raises(ValueError, match="one entry per catalog app"):
            SimulationConfig(app_weights=[1.0, 2.0])

    def test_app_weights_sign_checked(self):
        from repro.device.apps import APP_CATALOG

        weights = [1.0] * len(APP_CATALOG)
        weights[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            SimulationConfig(app_weights=weights)
        with pytest.raises(ValueError, match="positive"):
            SimulationConfig(app_weights=[0.0] * len(APP_CATALOG))

    def test_per_user_field_lengths_checked(self):
        with pytest.raises(ValueError, match="one entry per user"):
            SimulationConfig(num_users=3, user_wifi=[True, False])
        with pytest.raises(ValueError, match="one entry per user"):
            SimulationConfig(num_users=2, user_data_alpha=[0.5])

    def test_bad_user_arrival_spec_rejected(self):
        with pytest.raises(ValueError, match="user_arrivals"):
            SimulationConfig(num_users=1, user_arrivals=[{"kind": "weird"}])
