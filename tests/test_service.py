"""Orchestrator + API behaviours around failure and concurrency edges.

The bitwise checkpoint/resume contract lives in ``tests/test_checkpoint.py``
and the end-to-end kill/resume gate in ``benchmarks/service_smoke.py``;
this module pins down the service-layer edges: register-only submission,
corrupt-checkpoint handling, duplicate-execution guards, and the API's
error envelope.
"""

import json

import pytest

from repro.analysis.runner import RunSpec
from repro.service.api import ServiceAPI
from repro.service.checkpoint import CHECKPOINT_FORMAT_VERSION
from repro.service.jobs import ExperimentService


def tiny_spec(**overrides) -> RunSpec:
    config = dict(
        num_users=3,
        total_slots=40,
        app_arrival_prob=0.01,
        seed=3,
        num_train_samples=120,
        num_test_samples=60,
        hidden_dims=(4,),
        eval_interval_slots=20,
        trace_interval_slots=10,
        learning_rate=0.05,
    )
    config.update(overrides.pop("config", {}))
    return RunSpec(policy="online", config=config, **overrides)


class TestRegisterOnlySubmit:
    def test_enqueue_false_leaves_the_job_queued(self, tmp_path):
        """The `jobs submit` (no --run) path must not execute in-process."""
        service = ExperimentService(tmp_path)
        record = service.submit(tiny_spec(), enqueue=False)
        assert record.state == "queued"
        assert service._pool is None  # no worker thread ever started
        assert service.get(record.id).state == "queued"
        assert service.result(record.id) is None

    def test_registered_job_runs_later(self, tmp_path):
        service = ExperimentService(tmp_path)
        record = service.submit(tiny_spec(), enqueue=False)
        finished = service.run_job(record.id)
        assert finished.state == "done"
        assert service.result(record.id) is not None


class TestCorruptCheckpoint:
    def test_unloadable_checkpoint_marks_the_job_failed(self, tmp_path):
        """store.load() failures must surface as a failed record, not a
        silent exception inside a pool future."""
        service = ExperimentService(tmp_path)
        record = service.submit(tiny_spec(), enqueue=False)
        checkpoint_dir = service.job_dir(record.id) / "checkpoint"
        checkpoint_dir.mkdir(parents=True)
        (checkpoint_dir / "manifest.json").write_text(
            json.dumps({"format_version": CHECKPOINT_FORMAT_VERSION + 1})
        )
        finished = service.run_job(record.id)
        assert finished.state == "failed"
        assert "unsupported" in finished.error
        assert service.get(record.id).state == "failed"


class TestDuplicateExecutionGuard:
    def test_run_job_skips_a_job_already_executing_here(self, tmp_path):
        service = ExperimentService(tmp_path)
        record = service.submit(tiny_spec(), enqueue=False)
        # Simulate another worker mid-claim of the same job.
        service._running.add(record.id)
        skipped = service.run_job(record.id)
        assert skipped.state == "queued"  # untouched: no second execution
        service._running.discard(record.id)
        assert service.run_job(record.id).state == "done"


class TestAPIErrorEnvelope:
    @pytest.fixture
    def api(self, tmp_path):
        return ServiceAPI(ExperimentService(tmp_path))

    def test_unexpected_exception_returns_json_500(self, api, monkeypatch, capsys):
        def boom():
            raise RuntimeError("exploded in the job store")

        monkeypatch.setattr(api.service, "list_jobs", boom)
        status, payload = api.handle("GET", "/jobs", None)
        assert status == 500
        assert "exploded in the job store" in payload["error"]
        assert "RuntimeError" in capsys.readouterr().err  # logged server-side

    def test_bad_submit_payload_is_a_400(self, api):
        status, payload = api.handle("POST", "/jobs", {"nonsense": True})
        assert status == 400
        assert "spec" in payload["error"]

    def test_unknown_job_is_a_404(self, api):
        status, payload = api.handle("GET", "/jobs/deadbeef", None)
        assert status == 404
        assert "deadbeef" in payload["error"]
