"""Sharded fleet engine: bitwise shard-count invariance and its substrate.

The contract (see :mod:`repro.sim.shard`) is *bitwise* identity, not
approximate agreement: for any shard count, a :class:`ShardedEngine` run
must produce the same decisions, energy, queues, traces and accuracy curve
as the single-process fleet fast-forward engine — every floating-point value
compared with ``==``.  The matrix here covers the paper-baseline scenario
and a heterogeneous registry scenario (per-cohort devices, connectivity and
arrivals), sync-round quorums that span shards, battery flips inside quiet
regions (the two-phase fast-forward commit), and ragged last-shard sizing.

The substrate pieces ride along: the sparse launch-event arrival generator
(bitwise-equal to the dense per-slot draws), schedule slicing, and the
memory-bounded ``trace_level`` telemetry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import OnlinePolicy
from repro.core.policies import ImmediatePolicy, SyncPolicy
from repro.scenarios import compile_scenario, get_scenario
from repro.sim.arrivals import (
    ArrivalSchedule,
    BernoulliArrivalProcess,
    DiurnalArrivalProcess,
    TraceArrivalProcess,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.shard import ShardedEngine, shard_bounds

PHONE_MIX = {"pixel2": 1.0 / 3, "nexus6": 1.0 / 3, "nexus6p": 1.0 / 3}


def _scenario_config(name: str, **overrides) -> SimulationConfig:
    """A registry scenario's compiled config, scaled down for test speed."""
    compiled = compile_scenario(get_scenario(name))
    config = dict(compiled.overrides)
    config.update(overrides)
    return SimulationConfig(**config)


def _observables(result, num_users: int) -> dict:
    """Everything the bitwise contract covers, ``==``-comparable."""
    return {
        "energy_j": result.total_energy_j(),
        "training_related_j": result.accountant.training_related_j(),
        "breakdowns": tuple(
            result.accountant.user_breakdown(u) for u in range(num_users)
        ),
        "accuracies": tuple(result.accuracy.accuracies()),
        "accuracy_times": tuple(result.accuracy.times()),
        "num_updates": result.num_updates,
        "decision_evaluations": result.decision_evaluations,
        "decisions": dict(result.trace.decisions),
        "corun_jobs": result.trace.corun_jobs,
        "background_jobs": result.trace.background_jobs,
        "slot_samples": tuple(result.trace.slot_samples),
        "update_samples": tuple(result.trace.update_samples),
        "user_gaps": tuple(
            tuple(result.trace.user_gap_trace(u)) for u in range(num_users)
        ),
        "queue_history": tuple(result.queue_history),
        "virtual_queue_history": tuple(result.virtual_queue_history),
        "mean_queue": result.mean_queue_length(),
        "mean_virtual": result.mean_virtual_queue_length(),
        "comm_bytes_mb": result.comm_bytes_mb,
        "comm_failures": result.comm_failures,
        "battery_soc": tuple(result.final_battery_soc),
        "device_names": tuple(result.device_names),
    }


def _assert_shard_invariant(config: SimulationConfig, make_policy, shard_counts=(1, 2, 4)):
    """Sharded runs must match the single-process fleet fast-forward run."""
    single = SimulationEngine(
        config, make_policy(), backend="fleet", fast_forward=True
    ).run()
    expected = _observables(single, config.num_users)
    for shards in shard_counts:
        sharded = ShardedEngine(config, make_policy(), shards=shards).run()
        observed = _observables(sharded, config.num_users)
        mismatched = [key for key in expected if observed[key] != expected[key]]
        assert not mismatched, f"shards={shards} diverged on {mismatched}"
    return single


class TestShardBounds:
    def test_even_split_is_contiguous(self):
        assert shard_bounds(100, 4) == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_ragged_last_shard_is_smallest(self):
        bounds = shard_bounds(10, 4)
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]
        sizes = [hi - lo for lo, hi in bounds]
        assert sum(sizes) == 10 and max(sizes) - min(sizes) <= 1
        assert sizes[-1] == min(sizes)

    def test_more_shards_than_users_clamps(self):
        assert shard_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard_bounds(0, 2)
        with pytest.raises(ValueError):
            shard_bounds(10, 0)


class TestShardCountInvariance:
    """The acceptance matrix: shards in {1, 2, 4} bitwise vs single-process."""

    def test_paper_baseline_scaled(self):
        config = _scenario_config(
            "paper-baseline",
            total_slots=300,
            app_arrival_prob=0.01,
            num_train_samples=500,
            num_test_samples=200,
            eval_interval_slots=150,
        )
        result = _assert_shard_invariant(config, lambda: OnlinePolicy(v=4000.0))
        assert result.num_updates > 0  # the comparison must cover real uploads

    def test_heterogeneous_registry_scenario(self):
        # flagship-vs-budget pins per-cohort device mixes and connectivity,
        # so the comparison exercises per-user arrays across shard borders.
        config = _scenario_config(
            "flagship-vs-budget",
            total_slots=250,
            num_train_samples=400,
            num_test_samples=150,
            eval_interval_slots=125,
        )
        result = _assert_shard_invariant(config, lambda: OnlinePolicy(v=4000.0))
        assert result.num_updates > 0

    def test_ragged_last_shard_run(self):
        # 10 users over 4 shards: sizes 3/3/2/2 (the ragged tail).
        config = SimulationConfig(
            num_users=10,
            total_slots=250,
            app_arrival_prob=0.01,
            seed=5,
            num_train_samples=300,
            num_test_samples=120,
            eval_interval_slots=125,
        )
        _assert_shard_invariant(config, ImmediatePolicy, shard_counts=(4,))


class TestShmPlane:
    """The shared-memory doorbell data plane: engaged, bypassed, spilled."""

    def _config(self) -> SimulationConfig:
        return SimulationConfig(
            num_users=12,
            total_slots=250,
            app_arrival_prob=0.01,
            seed=3,
            num_train_samples=300,
            num_test_samples=120,
            eval_interval_slots=125,
        )

    def _single(self, config):
        return _observables(
            SimulationEngine(
                config, OnlinePolicy(v=4000.0), backend="fleet", fast_forward=True
            ).run(),
            config.num_users,
        )

    def test_plane_is_engaged_and_bitwise(self, monkeypatch):
        # The default sharded run must actually create mailbox segments and
        # push doorbell frames through them — not silently fall back to
        # plain pickle — while staying bitwise vs the single-process run.
        from repro.sim import shmplane

        created = []
        encoded = []
        real_create = shmplane.ShardMailbox.create.__func__
        real_encode = shmplane.ShardMailbox.encode

        def counting_create(cls, request_bytes, reply_bytes):
            box = real_create(cls, request_bytes, reply_bytes)
            created.append(box)
            return box

        def counting_encode(self, obj, region, copy):
            frame = real_encode(self, obj, region, copy)
            if frame and frame[0] != 0x80:  # doorbell, not pickle fallback
                encoded.append(region)
            return frame

        monkeypatch.setattr(
            shmplane.ShardMailbox, "create", classmethod(counting_create)
        )
        monkeypatch.setattr(shmplane.ShardMailbox, "encode", counting_encode)
        config = self._config()
        expected = self._single(config)
        sharded = ShardedEngine(config, OnlinePolicy(v=4000.0), shards=2).run()
        assert _observables(sharded, config.num_users) == expected
        assert len(created) == 2  # one mailbox per shard
        assert encoded  # doorbell frames actually carried protocol traffic

    def test_plane_disabled_matches(self):
        config = self._config()
        expected = self._single(config)
        sharded = ShardedEngine(
            config, OnlinePolicy(v=4000.0), shards=2, shm_plane=False
        ).run()
        assert _observables(sharded, config.num_users) == expected

    def test_slab_spill_falls_back_bitwise(self, monkeypatch):
        # Shrink the mailbox until every parameter-sized payload overflows
        # the slab: the codec must spill to plain in-band pickle (the slab
        # is an optimization, never a correctness constraint) and the run
        # must stay bitwise.
        import repro.sim.shard as shard_mod

        monkeypatch.setattr(shard_mod, "_mailbox_bytes", lambda n, p: (4096, 4096))
        config = self._config()
        expected = self._single(config)
        sharded = ShardedEngine(config, OnlinePolicy(v=4000.0), shards=2).run()
        assert _observables(sharded, config.num_users) == expected

    def test_battery_flip_inside_quiet_region(self):
        # Charging batteries re-enter the pool mid-region: the two-phase
        # quiet commit must keep every shard in lock-step.
        config = SimulationConfig(
            num_users=10,
            total_slots=1000,
            app_arrival_prob=0.002,
            seed=1,
            num_train_samples=240,
            num_test_samples=100,
            eval_interval_slots=400,
            device_mix=PHONE_MIX,
            battery_capacity_j=1200.0,
            battery_charge_rate_w=2.0,
            min_battery_soc=0.2,
        )
        _assert_shard_invariant(config, ImmediatePolicy, shard_counts=(2, 3))


class TestSyncQuorumAcrossShards:
    def test_sync_round_spans_shards(self):
        # One phone pre-drains inside every engine (battery capacity sized
        # so the fleet gates out mid-run); rounds must still complete over
        # the participating quorum with the buffer and stalled set global.
        config = SimulationConfig(
            num_users=8,
            total_slots=900,
            app_arrival_prob=0.01,
            seed=0,
            num_train_samples=240,
            num_test_samples=100,
            eval_interval_slots=300,
            device_mix=PHONE_MIX,
            battery_capacity_j=2000.0,
            battery_charge_rate_w=0.0,
            min_battery_soc=0.2,
        )
        single = _assert_shard_invariant(config, SyncPolicy, shard_counts=(2, 4))
        assert single.num_updates > 0
        # The drained fleet really gated out (otherwise the quorum logic
        # never fired and the test proves nothing).
        assert any(soc < 0.2 + 1e-9 for soc in single.final_battery_soc)


class TestTraceLevels:
    def _run(self, trace_level, shards=1):
        config = SimulationConfig(
            num_users=8,
            total_slots=250,
            app_arrival_prob=0.01,
            seed=2,
            num_train_samples=240,
            num_test_samples=100,
            eval_interval_slots=125,
        )
        policy = OnlinePolicy(v=4000.0)
        if shards > 1:
            return ShardedEngine(
                config, policy, shards=shards, trace_level=trace_level
            ).run()
        return SimulationEngine(config, policy, trace_level=trace_level).run()

    def test_summary_keeps_headline_numbers_bitwise(self):
        full = self._run("full")
        summary = self._run("summary")
        assert summary.total_energy_j() == full.total_energy_j()
        assert summary.num_updates == full.num_updates
        assert summary.accuracy.accuracies() == full.accuracy.accuracies()
        assert dict(summary.trace.decisions) == dict(full.trace.decisions)
        # Streamed queue means agree with the history-backed values up to
        # the reduction (left-to-right fold vs np.mean's pairwise sum).
        assert summary.mean_queue_length() == pytest.approx(full.mean_queue_length())
        assert summary.final_virtual_queue_length() == pytest.approx(
            full.final_virtual_queue_length()
        )

    def test_summary_is_memory_bounded(self):
        summary = self._run("summary")
        assert summary.trace.slot_samples == []
        assert summary.trace.per_user_gaps == {}
        assert summary.queue_history == []
        assert summary.virtual_queue_history == []
        assert summary.queue_stats is not None
        assert summary.trace.update_samples  # per-update samples survive

    def test_off_drops_update_samples_too(self):
        off = self._run("off")
        assert off.trace.update_samples == []
        assert off.num_updates > 0  # the counter survives on the server

    def test_summary_matches_under_sharding(self):
        single = self._run("summary")
        sharded = self._run("summary", shards=2)
        assert sharded.total_energy_j() == single.total_energy_j()
        assert sharded.num_updates == single.num_updates
        assert sharded.mean_queue_length() == single.mean_queue_length()

    def test_engine_rejects_unknown_level(self):
        config = SimulationConfig(num_users=4, total_slots=10)
        with pytest.raises(ValueError, match="trace_level"):
            SimulationEngine(config, ImmediatePolicy(), trace_level="everything")


class TestSparseArrivals:
    """The sparse launch-event generator consumes the dense draw stream."""

    def _specs(self, n, seed):
        from repro.device.models import build_device_fleet

        return build_device_fleet(n, np.random.default_rng(seed))

    def _compare(self, process, num_users=8, total_slots=2000, seed=0, **kwargs):
        specs = self._specs(num_users, seed)
        dense_rng = np.random.default_rng(seed)
        sparse_rng = np.random.default_rng(seed)
        dense = ArrivalSchedule.generate(
            num_users=num_users, total_slots=total_slots, slot_seconds=1.0,
            process=process, device_specs=specs, rng=dense_rng,
            method="dense", **kwargs,
        )
        sparse = ArrivalSchedule.generate(
            num_users=num_users, total_slots=total_slots, slot_seconds=1.0,
            process=process, device_specs=specs, rng=sparse_rng,
            method="sparse", **kwargs,
        )
        for user in range(num_users):
            dense_apps = [
                (a.arrival_slot, a.name, a.duration_slots)
                for a in dense.arrivals_for(user)
            ]
            sparse_apps = [
                (a.arrival_slot, a.name, a.duration_slots)
                for a in sparse.arrivals_for(user)
            ]
            assert dense_apps == sparse_apps
        # Equal stream positions: later users (and later components) see the
        # same generator state whichever method produced the schedule.
        assert dense_rng.bit_generator.state == sparse_rng.bit_generator.state
        return dense

    def test_bernoulli_equivalence(self):
        schedule = self._compare(BernoulliArrivalProcess(0.01), seed=3)
        assert schedule.total_arrivals() > 0

    def test_diurnal_equivalence(self):
        self._compare(DiurnalArrivalProcess(peak_probability=0.02), seed=1)

    def test_trace_replay_equivalence(self):
        self._compare(TraceArrivalProcess([3, 50, 400], period_slots=500), seed=2)

    def test_per_user_process_mix_equivalence(self):
        processes = [
            BernoulliArrivalProcess(0.01)
            if user % 3 == 0
            else (
                DiurnalArrivalProcess(peak_probability=0.03)
                if user % 3 == 1
                else TraceArrivalProcess([5, 60, 200], period_slots=300)
            )
            for user in range(9)
        ]
        self._compare(processes, num_users=9, seed=4)

    def test_weighted_apps_equivalence(self):
        self._compare(
            BernoulliArrivalProcess(0.02),
            seed=5,
            app_weights=[1.0, 1.0, 0.5, 2.0, 2.0, 0.5, 6.0, 6.0],
        )

    def test_auto_threshold_selects_sparse_transparently(self):
        # Above the threshold "auto" must still equal the dense reference.
        process = BernoulliArrivalProcess(0.005)
        specs = self._specs(4, 0)
        dense = ArrivalSchedule.generate(
            num_users=4, total_slots=600_000, slot_seconds=1.0, process=process,
            device_specs=specs, rng=np.random.default_rng(0), method="dense",
        )
        auto = ArrivalSchedule.generate(
            num_users=4, total_slots=600_000, slot_seconds=1.0, process=process,
            device_specs=specs, rng=np.random.default_rng(0), method="auto",
        )
        for user in range(4):
            assert [a.arrival_slot for a in auto.arrivals_for(user)] == [
                a.arrival_slot for a in dense.arrivals_for(user)
            ]

    def test_generate_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="generation method"):
            ArrivalSchedule.generate(
                num_users=1, total_slots=10, slot_seconds=1.0,
                process=BernoulliArrivalProcess(0.1),
                device_specs=self._specs(1, 0),
                rng=np.random.default_rng(0), method="fancy",
            )


class TestScheduleSlicing:
    def test_slice_users_reindexes(self):
        specs = np.random.default_rng(0)
        from repro.device.models import build_device_fleet

        schedule = ArrivalSchedule.generate(
            num_users=6, total_slots=800, slot_seconds=1.0,
            process=BernoulliArrivalProcess(0.02),
            device_specs=build_device_fleet(6, np.random.default_rng(0)),
            rng=np.random.default_rng(1),
        )
        sliced = schedule.slice_users(2, 5)
        for local, user in enumerate(range(2, 5)):
            assert [a.arrival_slot for a in sliced.arrivals_for(local)] == [
                a.arrival_slot for a in schedule.arrivals_for(user)
            ]
        assert sliced.total_arrivals() == sum(
            len(schedule.arrivals_for(user)) for user in range(2, 5)
        )

    def test_slice_users_validates_range(self):
        schedule = ArrivalSchedule({0: []})
        with pytest.raises(ValueError):
            schedule.slice_users(3, 3)
