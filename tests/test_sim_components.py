"""Tests for the simulation components: RNG, config, arrivals and traces."""

import numpy as np
import pytest

from repro.device.models import DEVICE_CATALOG
from repro.sim.arrivals import (
    ArrivalSchedule,
    BernoulliArrivalProcess,
    DiurnalArrivalProcess,
)
from repro.sim.config import SimulationConfig
from repro.sim.rng import spawn_generators
from repro.sim.trace import SimulationTrace, SlotSample, UpdateSample


class TestSpawnGenerators:
    def test_generators_are_independent_and_reproducible(self):
        first = spawn_generators(42, ["a", "b"])
        second = spawn_generators(42, ["a", "b"])
        assert first["a"].random() == second["a"].random()
        assert first["a"].random() != first["b"].random()

    def test_different_seed_differs(self):
        a = spawn_generators(1, ["x"])["x"].random()
        b = spawn_generators(2, ["x"])["x"].random()
        assert a != b

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            spawn_generators(0, [])
        with pytest.raises(ValueError):
            spawn_generators(0, ["a", "a"])


class TestSimulationConfig:
    def test_defaults_match_paper(self):
        config = SimulationConfig()
        assert config.num_users == 25
        assert config.total_slots == 10_800
        assert config.slot_seconds == 1.0
        assert config.app_arrival_prob == pytest.approx(0.001)
        assert config.batch_size == 20
        assert config.total_seconds() == pytest.approx(3 * 3600.0)

    def test_scaled_copy(self):
        config = SimulationConfig()
        scaled = config.scaled(total_slots=100, num_users=5)
        assert scaled.total_slots == 100 and scaled.num_users == 5
        assert config.total_slots == 10_800  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_users=0)
        with pytest.raises(ValueError):
            SimulationConfig(app_arrival_prob=1.5)
        with pytest.raises(ValueError):
            SimulationConfig(slot_seconds=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(device_names=["pixel2"], num_users=2)
        with pytest.raises(ValueError):
            SimulationConfig(epsilon=-1.0)


class TestArrivalProcesses:
    def test_bernoulli_constant(self):
        process = BernoulliArrivalProcess(0.01)
        assert process.probability_at(0, 1.0) == 0.01
        assert process.probability_at(9999, 1.0) == 0.01
        with pytest.raises(ValueError):
            BernoulliArrivalProcess(1.5)

    def test_diurnal_peaks_at_midday(self):
        process = DiurnalArrivalProcess(peak_probability=0.01, trough_probability=0.001,
                                        period_s=86_400.0)
        midnight = process.probability_at(0, 1.0)
        midday = process.probability_at(43_200, 1.0)
        assert midday == pytest.approx(0.01, rel=1e-6)
        assert midnight == pytest.approx(0.001, rel=1e-6)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivalProcess(peak_probability=0.001, trough_probability=0.01)
        with pytest.raises(ValueError):
            DiurnalArrivalProcess(period_s=0.0)


class TestArrivalSchedule:
    def _schedule(self, prob=0.01, slots=2000, users=4, seed=0):
        specs = [DEVICE_CATALOG["pixel2"]] * users
        return ArrivalSchedule.generate(
            num_users=users,
            total_slots=slots,
            slot_seconds=1.0,
            process=BernoulliArrivalProcess(prob),
            device_specs=specs,
            rng=np.random.default_rng(seed),
        )

    def test_empirical_rate_close_to_nominal(self):
        schedule = self._schedule(prob=0.005, slots=20_000, users=5, seed=1)
        rate = schedule.arrival_rate(20_000, 5)
        # Arrivals are suppressed while an app runs, so the empirical rate is
        # a bit below the nominal per-slot probability but the same order.
        assert 0.001 < rate <= 0.005

    def test_no_overlapping_apps(self):
        schedule = self._schedule(prob=0.05, slots=5000, users=3, seed=2)
        for user in range(3):
            arrivals = schedule.arrivals_for(user)
            for earlier, later in zip(arrivals, arrivals[1:]):
                assert later.arrival_slot >= earlier.end_slot()

    def test_app_starting_at_round_trip(self):
        schedule = self._schedule(seed=3)
        for user in range(4):
            for app in schedule.arrivals_for(user):
                assert schedule.app_starting_at(user, app.arrival_slot) is app
        assert schedule.app_starting_at(0, 10**9) is None

    def test_next_arrival_oracle(self):
        schedule = self._schedule(prob=0.02, slots=3000, users=2, seed=4)
        arrivals = schedule.arrivals_for(0)
        if not arrivals:
            pytest.skip("no arrivals generated for this seed")
        first = arrivals[0]
        found = schedule.next_arrival(0, 0, first.arrival_slot + 1)
        assert found == (first.arrival_slot, first.name)
        assert schedule.next_arrival(0, first.arrival_slot + 1, first.arrival_slot + 2) != found

    def test_next_arrival_validation(self):
        schedule = self._schedule()
        with pytest.raises(ValueError):
            schedule.next_arrival(0, 10, 10)

    def test_zero_probability_produces_no_arrivals(self):
        schedule = self._schedule(prob=0.0)
        assert schedule.total_arrivals() == 0

    def test_durations_match_table(self, table):
        schedule = self._schedule(prob=0.05, slots=3000, users=2, seed=5)
        for user in range(2):
            for app in schedule.arrivals_for(user):
                expected = round(table.corun_time("pixel2", app.name))
                assert app.duration_slots == expected

    def test_spec_count_mismatch(self):
        with pytest.raises(ValueError):
            ArrivalSchedule.generate(
                num_users=3,
                total_slots=10,
                slot_seconds=1.0,
                process=BernoulliArrivalProcess(0.1),
                device_specs=[DEVICE_CATALOG["pixel2"]],
                rng=np.random.default_rng(0),
            )


class TestSimulationTrace:
    def _sample(self, slot, energy=100.0):
        return SlotSample(slot=slot, time_s=float(slot), cumulative_energy_j=energy,
                          queue_length=1.0, virtual_queue_length=2.0, gap_sum=3.0,
                          num_training=1, num_ready=2)

    def test_slot_sampling_interval(self):
        trace = SimulationTrace(trace_interval_slots=10)
        for slot in range(25):
            trace.maybe_record_slot(self._sample(slot))
        assert [s.slot for s in trace.slot_samples] == [0, 10, 20]
        assert trace.times() == [0.0, 10.0, 20.0]
        assert trace.energy_series_kj() == [0.1, 0.1, 0.1]

    def test_update_and_decision_records(self):
        trace = SimulationTrace()
        trace.record_update(UpdateSample(time_s=5.0, user_id=1, lag=3, gradient_gap=0.4,
                                         train_loss=1.0, sync_round=False))
        trace.record_decision(scheduled=True, corun=True)
        trace.record_decision(scheduled=True, corun=False)
        trace.record_decision(scheduled=False)
        assert trace.update_lags() == [3]
        assert trace.update_gaps() == [0.4]
        assert trace.corun_jobs == 1 and trace.background_jobs == 1
        assert trace.schedule_fraction() == pytest.approx(2 / 3)

    def test_per_user_gap_traces_and_variance(self):
        trace = SimulationTrace()
        for t in range(5):
            trace.record_user_gap(0, float(t), 1.0)
            trace.record_user_gap(1, float(t), float(t))
        assert len(trace.user_gap_trace(0)) == 5
        assert trace.user_gap_trace(9) == []
        assert trace.gap_variance_across_users() > 0.0

    def test_empty_trace_defaults(self):
        trace = SimulationTrace()
        assert trace.schedule_fraction() == 0.0
        assert trace.gap_variance_across_users() == 0.0
        with pytest.raises(ValueError):
            SimulationTrace(trace_interval_slots=0)
