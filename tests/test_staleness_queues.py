"""Tests for the staleness metrics, the queues and the Lyapunov machinery."""

import numpy as np
import pytest

from repro.core.queues import LyapunovAnalyzer, TaskQueue, VirtualQueue
from repro.core.staleness import (
    GapTracker,
    gradient_gap,
    gradient_gap_from_params,
    linear_weight_prediction,
    momentum_lag_factor,
)


class TestMomentumLagFactor:
    def test_zero_lag_is_zero(self):
        assert momentum_lag_factor(0.9, 0) == 0.0

    def test_lag_one_is_one(self):
        assert momentum_lag_factor(0.9, 1) == pytest.approx(1.0)

    def test_monotone_in_lag(self):
        values = [momentum_lag_factor(0.9, lag) for lag in range(10)]
        assert values == sorted(values)

    def test_limit_is_geometric_series_sum(self):
        assert momentum_lag_factor(0.9, 10_000) == pytest.approx(10.0)

    def test_zero_momentum(self):
        assert momentum_lag_factor(0.0, 5) == 1.0
        assert momentum_lag_factor(0.0, 0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            momentum_lag_factor(1.0, 3)
        with pytest.raises(ValueError):
            momentum_lag_factor(0.5, -1)


class TestGradientGap:
    def test_eq4_closed_form(self):
        # g = eta * (1 - beta^l)/(1 - beta) * ||v||
        value = gradient_gap(momentum_norm=2.0, learning_rate=0.1, momentum=0.5, lag=2)
        assert value == pytest.approx(0.1 * (1 - 0.25) / 0.5 * 2.0)

    def test_zero_lag_gives_zero_gap(self):
        assert gradient_gap(5.0, 0.1, 0.9, 0) == 0.0

    def test_gap_increases_with_lag(self):
        gaps = [gradient_gap(1.0, 0.05, 0.9, lag) for lag in range(15)]
        assert gaps == sorted(gaps)

    def test_gap_scales_with_momentum_norm(self):
        assert gradient_gap(4.0, 0.1, 0.9, 3) == pytest.approx(
            2.0 * gradient_gap(2.0, 0.1, 0.9, 3)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            gradient_gap(-1.0, 0.1, 0.9, 1)
        with pytest.raises(ValueError):
            gradient_gap(1.0, 0.0, 0.9, 1)

    def test_exact_gap_from_params(self):
        theta_old = np.array([1.0, 2.0, 3.0])
        theta_new = np.array([1.0, 4.0, 3.0])
        assert gradient_gap_from_params(theta_old, theta_new) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            gradient_gap_from_params(theta_old, np.zeros(2))


class TestLinearWeightPrediction:
    def test_eq3_prediction(self):
        params = np.array([1.0, 1.0])
        velocity = np.array([0.5, -0.5])
        predicted = linear_weight_prediction(params, velocity, learning_rate=0.1,
                                             momentum=0.5, lag=2)
        factor = (1 - 0.25) / 0.5
        assert np.allclose(predicted, params - 0.1 * factor * velocity)

    def test_prediction_norm_matches_gap(self):
        params = np.zeros(3)
        velocity = np.array([3.0, 0.0, 4.0])  # norm 5
        predicted = linear_weight_prediction(params, velocity, 0.1, 0.9, 4)
        gap = gradient_gap(5.0, 0.1, 0.9, 4)
        assert np.linalg.norm(predicted - params) == pytest.approx(gap)

    def test_zero_lag_returns_params(self):
        params = np.array([1.0, 2.0])
        predicted = linear_weight_prediction(params, np.ones(2), 0.1, 0.9, 0)
        assert np.allclose(predicted, params)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            linear_weight_prediction(np.zeros(2), np.zeros(3), 0.1, 0.9, 1)


class TestGapTracker:
    def test_idle_accumulation_eq12(self):
        tracker = GapTracker(epsilon=0.5)
        assert tracker.current_gap(0) == 0.0
        tracker.accumulate_idle(0)
        tracker.accumulate_idle(0)
        assert tracker.current_gap(0) == pytest.approx(1.0)

    def test_scheduled_gap_replaces_accumulated(self):
        tracker = GapTracker(epsilon=0.5)
        tracker.accumulate_idle(0)
        tracker.on_scheduled(0, 3.0)
        assert tracker.current_gap(0) == pytest.approx(3.0)

    def test_update_applied_resets(self):
        tracker = GapTracker(epsilon=0.1)
        tracker.on_scheduled(0, 2.0)
        tracker.on_update_applied(0, realized_gap=1.5)
        assert tracker.current_gap(0) == 0.0
        assert tracker.history(0) == [2.0, 1.5]

    def test_total_gap_sums_users(self):
        tracker = GapTracker(epsilon=1.0)
        tracker.accumulate_idle(0)
        tracker.accumulate_idle(1)
        tracker.accumulate_idle(1)
        assert tracker.total_gap() == pytest.approx(3.0)
        assert tracker.total_gap([1]) == pytest.approx(2.0)
        assert tracker.total_gap([5]) == 0.0

    def test_reset_clears_everything(self):
        tracker = GapTracker()
        tracker.accumulate_idle(0)
        tracker.on_scheduled(1, 2.0)
        tracker.reset()
        assert tracker.total_gap() == 0.0
        assert tracker.history(1) == []

    def test_negative_values_rejected(self):
        tracker = GapTracker()
        with pytest.raises(ValueError):
            tracker.on_scheduled(0, -1.0)
        with pytest.raises(ValueError):
            tracker.on_update_applied(0, realized_gap=-0.5)
        with pytest.raises(ValueError):
            GapTracker(epsilon=-0.1)


class TestTaskQueue:
    def test_eq15_dynamics(self):
        queue = TaskQueue()
        assert queue.update(arrivals=5, services=0) == 5
        assert queue.update(arrivals=0, services=2) == 3
        assert queue.update(arrivals=1, services=10) == 0  # clamped at zero
        assert queue.update(arrivals=2, services=0) == 2
        assert queue.history() == [0, 5, 3, 0, 2]

    def test_same_slot_arrival_and_service_cancel(self):
        """A user scheduled in the slot it becomes ready never backlogs."""
        queue = TaskQueue()
        for _ in range(5):
            queue.update(arrivals=3, services=3)
        assert queue.length == 0.0

    def test_never_negative(self):
        queue = TaskQueue()
        queue.update(arrivals=0, services=100)
        assert queue.length == 0.0

    def test_time_average(self):
        queue = TaskQueue()
        queue.update(2, 0)
        queue.update(2, 1)
        assert queue.time_average() == pytest.approx((0 + 2 + 3) / 3)

    def test_reset(self):
        queue = TaskQueue(initial=3)
        queue.update(1, 0)
        queue.reset()
        assert queue.length == 0.0 and queue.history() == [0.0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            TaskQueue(initial=-1)
        queue = TaskQueue()
        with pytest.raises(ValueError):
            queue.update(-1, 0)


class TestVirtualQueue:
    def test_eq16_dynamics(self):
        queue = VirtualQueue(staleness_bound=10.0)
        assert queue.update(gap_sum=15.0) == 5.0
        assert queue.update(gap_sum=3.0) == 0.0  # drains by Lb - G
        assert queue.update(gap_sum=25.0) == 15.0

    def test_stays_zero_below_bound(self):
        queue = VirtualQueue(staleness_bound=100.0)
        for _ in range(50):
            queue.update(gap_sum=50.0)
        assert queue.length == 0.0

    def test_grows_when_bound_exceeded(self):
        queue = VirtualQueue(staleness_bound=10.0)
        for _ in range(10):
            queue.update(gap_sum=12.0)
        assert queue.length == pytest.approx(20.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            VirtualQueue(staleness_bound=0.0)
        queue = VirtualQueue(10.0)
        with pytest.raises(ValueError):
            queue.update(-1.0)


class TestLyapunovAnalyzer:
    def test_lyapunov_function_eq17(self):
        assert LyapunovAnalyzer.lyapunov(3.0, 4.0) == pytest.approx(12.5)

    def test_drift_eq18(self):
        assert LyapunovAnalyzer.drift(0.0, 0.0, 3.0, 4.0) == pytest.approx(12.5)
        assert LyapunovAnalyzer.drift(3.0, 4.0, 0.0, 0.0) == pytest.approx(-12.5)

    def test_bound_constant_lemma2(self):
        analyzer = LyapunovAnalyzer(staleness_bound=2.0, max_arrival=3.0,
                                    max_service=4.0, max_gap=5.0)
        assert analyzer.bound_constant() == pytest.approx(0.5 * (9 + 16 + 25 + 4))

    def test_drift_plus_penalty_bound_formula(self):
        analyzer = LyapunovAnalyzer(staleness_bound=2.0, max_arrival=1.0,
                                    max_service=1.0, max_gap=1.0)
        bound = analyzer.drift_plus_penalty_bound(
            v=10.0, expected_power=0.5, q_length=2.0, h_length=3.0,
            expected_arrival=1.0, expected_service=0.5, expected_gap=1.0,
        )
        expected = analyzer.bound_constant() + 10 * 0.5 + 2 * 0.5 + 3 * (1.0 - 2.0)
        assert bound == pytest.approx(expected)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            LyapunovAnalyzer(-1.0, 1.0, 1.0, 1.0)
        analyzer = LyapunovAnalyzer(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            analyzer.drift_plus_penalty_bound(-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
