"""Synchronous-round quorum under battery gating (deadlock regression).

Before the quorum fix, ``SimulationEngine._maybe_complete_sync_round``
waited for uploads from *all* ``num_users``.  A user below its battery
participation threshold with a zero charge rate can never train again, so
one drained device silently stalled every subsequent round: the run
completed, but the global model never advanced past the partial buffer.

The fix completes the round over the participating quorum — every user
except the permanently *stalled* ones (gated, zero charge rate, not
currently training) — and must do so identically in the loop engine, the
slot-by-slot fleet backend and the fast-forward path.
"""

from __future__ import annotations

import pytest

from repro.core.policies import SyncPolicy
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine


def _battery_sync_config(**overrides) -> SimulationConfig:
    base = dict(
        num_users=8,
        total_slots=900,
        app_arrival_prob=0.01,
        seed=0,
        num_train_samples=240,
        num_test_samples=100,
        eval_interval_slots=300,
        battery_capacity_j=50_000.0,
        battery_charge_rate_w=0.0,
        min_battery_soc=0.2,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _run_with_drained_user(backend: str, fast_forward: bool):
    """Run a sync workload with one phone pre-drained below the threshold."""
    config = _battery_sync_config()
    engine = SimulationEngine(
        config, SyncPolicy(), backend=backend, fast_forward=fast_forward
    )
    drained = next(
        user for user, battery in enumerate(engine.batteries) if battery is not None
    )
    engine.batteries[drained].charge_j = 0.05 * engine.batteries[drained].capacity_j
    return drained, engine.run()


class TestSyncQuorumDeadlock:
    @pytest.mark.parametrize(
        "backend,fast_forward",
        [("loop", False), ("fleet", False), ("fleet", True)],
    )
    def test_rounds_complete_without_the_stalled_user(self, backend, fast_forward):
        drained, result = _run_with_drained_user(backend, fast_forward)
        # Rounds keep completing: the global model receives updates from the
        # participating quorum (7 users per round here).
        assert result.num_updates > 0
        assert result.num_updates % (result.config.num_users - 1) == 0
        # The stalled user never uploads.
        participants = {u.user_id for u in result.trace.update_samples}
        assert drained not in participants
        assert len(participants) == result.config.num_users - 1

    def test_all_backends_agree_bitwise(self):
        runs = [
            _run_with_drained_user(backend, fast_forward)[1]
            for backend, fast_forward in (
                ("loop", False),
                ("fleet", False),
                ("fleet", True),
            )
        ]
        reference = runs[0]
        for other in runs[1:]:
            assert other.num_updates == reference.num_updates
            assert other.total_energy_j() == reference.total_energy_j()
            assert other.trace.update_samples == reference.trace.update_samples
            assert other.accountant.per_slot_totals() == reference.accountant.per_slot_totals()
            assert other.final_battery_soc == reference.final_battery_soc

    def test_full_fleet_quorum_unchanged_without_batteries(self):
        """No batteries: the round still waits for every single user."""
        config = _battery_sync_config(battery_capacity_j=None, total_slots=600)
        result = SimulationEngine(config, SyncPolicy(), backend="fleet").run()
        assert result.num_updates > 0
        assert result.num_updates % config.num_users == 0

    def test_gated_user_with_charger_is_waited_for(self):
        """A gated user that charges back up is *not* stalled: rounds wait.

        A sparse arrival rate keeps the drained device idle (charging only
        happens while idle), and the fast charger brings it back above the
        participation threshold well inside the horizon.
        """
        config = _battery_sync_config(
            battery_charge_rate_w=100.0,
            app_arrival_prob=0.0005,
            total_slots=1500,
            seed=1,
        )
        engine = SimulationEngine(config, SyncPolicy(), backend="fleet")
        drained = next(
            user
            for user, battery in enumerate(engine.batteries)
            if battery is not None
        )
        engine.batteries[drained].charge_j = 0.1 * engine.batteries[drained].capacity_j
        result = engine.run()
        # Once recharged above the threshold the user rejoins, so completed
        # rounds always include the whole fleet.
        assert result.num_updates > 0
        assert result.num_updates % config.num_users == 0
        participants = {u.user_id for u in result.trace.update_samples}
        assert drained in participants


class TestOfflineOracleCrossEngine:
    """A policy shared across engines must never plan on the wrong schedule."""

    def test_each_run_attaches_its_own_schedule(self):
        from repro.core.offline import OfflinePolicy

        config = SimulationConfig(
            num_users=4, total_slots=60, app_arrival_prob=0.02, seed=0,
            num_train_samples=120, num_test_samples=60, eval_interval_slots=30,
        )
        policy = OfflinePolicy(staleness_bound=500.0, window_slots=30)
        first = SimulationEngine(config, policy)
        second = SimulationEngine(config.scaled(seed=1), policy)
        # Attachment happens at run time, after the reset: each engine plans
        # against its own pre-generated schedule even with a shared policy.
        first.run()
        assert policy._oracle is first.arrivals
        second.run()
        assert policy._oracle is second.arrivals

    def test_shared_policy_matches_fresh_policies(self):
        from repro.core.offline import OfflinePolicy

        config = SimulationConfig(
            num_users=4, total_slots=80, app_arrival_prob=0.02, seed=0,
            num_train_samples=120, num_test_samples=60, eval_interval_slots=40,
        )
        shared = OfflinePolicy(staleness_bound=500.0, window_slots=40)
        reused_a = SimulationEngine(config, shared).run()
        reused_b = SimulationEngine(config.scaled(seed=1), shared).run()
        fresh_a = SimulationEngine(
            config, OfflinePolicy(staleness_bound=500.0, window_slots=40)
        ).run()
        fresh_b = SimulationEngine(
            config.scaled(seed=1), OfflinePolicy(staleness_bound=500.0, window_slots=40)
        ).run()
        assert reused_a.total_energy_j() == fresh_a.total_energy_j()
        assert reused_b.total_energy_j() == fresh_b.total_energy_j()
        assert reused_a.trace.decisions == fresh_a.trace.decisions
        assert reused_b.trace.decisions == fresh_b.trace.decisions
